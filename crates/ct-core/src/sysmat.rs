//! The sparse system matrix `A`.
//!
//! `A` encodes the scanner geometry: entry `A[j][i,c]` is the mean
//! intersection length of voxel `j` with the rays of channel `c` at
//! view `i`. Following the paper, entries are stored **per voxel
//! column**, contiguous across all views ("all these A-matrix elements,
//! across all views, are placed in memory in a contiguous fashion,
//! using a sparse matrix format"), with a per-view starting channel —
//! the layout the naive GPU kernel reads and the transformed layout of
//! paper Section 4.1 is derived from.

use crate::footprint::Trapezoid;
use crate::geometry::Geometry;
use crate::image::Image;
use crate::sinogram::Sinogram;

/// Entries below `MIN_ENTRY` (mm) are dropped from the sparse storage.
const MIN_ENTRY: f32 = 1e-6;

/// Voxel-chunk granularity of the parallel forward projection. Grids
/// at or below this size (the tiny 24x24 and test 64x64 scales) take
/// the single-chunk sequential path, preserving the historical
/// bit-exact sinograms; larger grids reduce fixed chunks in order.
pub const FORWARD_CHUNK: usize = 4096;

/// Sparse system matrix in per-voxel column format.
#[derive(Debug, Clone)]
pub struct SystemMatrix {
    geom: Geometry,
    /// Per voxel: start of its entries in `values` (length `nvox + 1`).
    voxel_offset: Vec<u64>,
    /// Per `(voxel, view)`: first detector channel with a nonzero entry.
    first_channel: Vec<u16>,
    /// Per `(voxel, view)`: number of contiguous nonzero entries.
    count: Vec<u16>,
    /// All entries, voxel-major then view-major then channel-major.
    values: Vec<f32>,
}

impl SystemMatrix {
    /// Compute the full system matrix for `geom`.
    ///
    /// Cost is `O(nvox * num_views)`; at the paper's 512x512/720-view
    /// scale this builds ~500M entries (~2 GB), matching the paper's
    /// observation that the A-matrix stream is the memory bottleneck.
    ///
    /// The inner loop dispatches on the process-wide
    /// [`mbir_simd::active`] backend; every backend produces the
    /// identical matrix (the lane path's branchless channel math is
    /// proven bitwise-equal to the branchy scalar form), so the knob
    /// only changes build wall-clock.
    pub fn compute(geom: &Geometry) -> Self {
        Self::compute_range(geom, 0, geom.grid.num_voxels())
    }

    /// Compute the system matrix with `threads` worker threads
    /// (voxel ranges are independent; results are bit-identical to
    /// [`SystemMatrix::compute`]). At the paper's 512x512/720-view
    /// scale the single-threaded build takes tens of seconds; this
    /// scales nearly linearly.
    /// `threads == 0` defers to the process-wide setting
    /// ([`mbir_parallel::threads`]).
    pub fn compute_parallel(geom: &Geometry, threads: usize) -> Self {
        let threads = mbir_parallel::resolve(threads);
        if threads == 1 {
            return Self::compute(geom);
        }
        let nvox = geom.grid.num_voxels();
        let chunk = nvox.div_ceil(threads);
        let parts: Vec<SystemMatrix> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(nvox);
                    s.spawn(move || Self::compute_range(geom, lo, hi))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        // Concatenate the per-range pieces.
        let nviews = geom.num_views;
        let mut voxel_offset = Vec::with_capacity(nvox + 1);
        let mut first_channel = Vec::with_capacity(nvox * nviews);
        let mut count = Vec::with_capacity(nvox * nviews);
        let mut values = Vec::new();
        voxel_offset.push(0u64);
        for part in parts {
            let base = values.len() as u64;
            voxel_offset.extend(part.voxel_offset[1..].iter().map(|&o| o + base));
            first_channel.extend_from_slice(&part.first_channel);
            count.extend_from_slice(&part.count);
            values.extend_from_slice(&part.values);
        }
        SystemMatrix { geom: *geom, voxel_offset, first_channel, count, values }
    }

    /// Compute the columns of voxels `lo..hi` only (a building block of
    /// [`SystemMatrix::compute_parallel`]; offsets are local),
    /// dispatching on the process-wide SIMD backend. Backends are
    /// bitwise-identical, so even a mid-build backend switch (another
    /// thread flipping the knob between chunks) cannot change results.
    fn compute_range(geom: &Geometry, lo: usize, hi: usize) -> Self {
        match mbir_simd::active() {
            mbir_simd::SimdBackend::Lanes => Self::compute_range_lanes(geom, lo, hi),
            _ => Self::compute_range_scalar(geom, lo, hi),
        }
    }

    /// Per-view trig and footprints — voxel-independent, shared by both
    /// build backends.
    fn per_view_traps(geom: &Geometry) -> Vec<(f32, f32, Trapezoid)> {
        (0..geom.num_views)
            .map(|v| {
                let th = geom.angle(v);
                let (c, s) = (th.cos(), th.sin());
                (c, s, Trapezoid::from_cos_sin(c.abs(), s.abs(), geom.grid.pixel_size))
            })
            .collect()
    }

    /// Scalar build: the canonical per-channel walk — branchy
    /// [`Trapezoid::mean_over`] per candidate channel, pushing the run
    /// as it goes.
    fn compute_range_scalar(geom: &Geometry, lo: usize, hi: usize) -> Self {
        let nviews = geom.num_views;
        let per_view = Self::per_view_traps(geom);
        let n = hi - lo;
        let mut voxel_offset = Vec::with_capacity(n + 1);
        let mut first_channel = vec![0u16; n * nviews];
        let mut count = vec![0u16; n * nviews];
        let mut values = Vec::with_capacity(n * nviews * 3);
        voxel_offset.push(0u64);
        let half_c = geom.channel_spacing / 2.0;
        for (local, j) in (lo..hi).enumerate() {
            let (row, col) = geom.grid.row_col(j);
            let x = geom.grid.x_of(col);
            let y = geom.grid.y_of(row);
            for (v, &(cv, sv, trap)) in per_view.iter().enumerate() {
                let tc = x * cv + y * sv;
                let lo_ch = geom.channel_of(tc - trap.half_base);
                let hi_ch = geom.channel_of(tc + trap.half_base);
                let c0 = (lo_ch.floor().max(0.0)) as usize;
                let c1 = (hi_ch.ceil() as isize).min(geom.num_channels as isize - 1);
                let mut first = 0usize;
                let mut nrun = 0usize;
                if c1 >= c0 as isize {
                    for ch in c0..=(c1 as usize) {
                        let t0 = geom.channel_center(ch) - half_c - tc;
                        let a = trap.mean_over(t0, t0 + geom.channel_spacing);
                        if a > MIN_ENTRY {
                            if nrun == 0 {
                                first = ch;
                            }
                            values.push(a);
                            nrun += 1;
                        } else if nrun > 0 {
                            break;
                        }
                    }
                }
                let idx = local * nviews + v;
                first_channel[idx] = first as u16;
                count[idx] = nrun as u16;
            }
            voxel_offset.push(values.len() as u64);
        }
        SystemMatrix { geom: *geom, voxel_offset, first_channel, count, values }
    }

    /// Voxel block size of the lane build's view-outer staging. Big
    /// enough that one view's staged candidates (~3 per voxel) fill the
    /// vector units, small enough that the staging buffers stay in L1.
    const LANE_BLOCK: usize = 64;

    /// Lane build: process voxels in blocks with the *view* loop
    /// outermost. For one view, every candidate channel of the block
    /// shares the same trapezoid, so only the channel offset `t0` is
    /// staged — the footprint constants stay in registers and the
    /// integral pass over the view's staged range is a straight-line
    /// branchless loop ([`Trapezoid::cumulative_select`], bitwise-equal
    /// to the branchy form; the packed divides are where the lane
    /// throughput is). Per-view spans then drive a voxel-major run
    /// extraction with the same threshold/break logic as the scalar
    /// build, so the output bits and entry order are identical by
    /// construction.
    fn compute_range_lanes(geom: &Geometry, lo: usize, hi: usize) -> Self {
        let nviews = geom.num_views;
        let per_view = Self::per_view_traps(geom);
        let n = hi - lo;
        let mut voxel_offset = Vec::with_capacity(n + 1);
        let mut first_channel = vec![0u16; n * nviews];
        let mut count = vec![0u16; n * nviews];
        let mut values = Vec::with_capacity(n * nviews * 3);
        voxel_offset.push(0u64);
        let half_c = geom.channel_spacing / 2.0;
        let spacing = geom.channel_spacing;

        const BLOCK: usize = SystemMatrix::LANE_BLOCK;
        // Per-block staging, reused across blocks: candidate channel
        // offsets (t0) and evaluated entries, view-major within the
        // block; spans[b * nviews + v] = (first candidate channel,
        // start, len) into them for voxel b of the block at view v.
        let mut t0s: Vec<f32> = Vec::with_capacity(BLOCK * nviews * 4);
        let mut entries: Vec<f32> = Vec::with_capacity(BLOCK * nviews * 4);
        let mut spans: Vec<(u32, u32, u32)> = vec![(0, 0, 0); BLOCK * nviews];
        let mut xs = [0.0f32; BLOCK];
        let mut ys = [0.0f32; BLOCK];
        let mut tcs = [0.0f32; BLOCK];
        let mut c0s = [0i32; BLOCK];
        let mut c1s = [0i32; BLOCK];

        let mut block_lo = lo;
        while block_lo < hi {
            let bn = (hi - block_lo).min(BLOCK);
            for (b, item) in xs.iter_mut().take(bn).enumerate() {
                let (row, col) = geom.grid.row_col(block_lo + b);
                *item = geom.grid.x_of(col);
                ys[b] = geom.grid.y_of(row);
            }

            t0s.clear();
            entries.clear();
            for (v, &(cv, sv, trap)) in per_view.iter().enumerate() {
                let vs_start = t0s.len();
                let hb = trap.half_base;
                let nch1 = geom.num_channels as i32 - 1;
                // Uniform per-voxel setup — no data-dependent control
                // flow, so the projections and channel-range clamps
                // pack across the block. The range clamps run in i32
                // (saturating casts agree with the scalar build's isize
                // path for every representable channel index).
                for b in 0..bn {
                    let tc = xs[b] * cv + ys[b] * sv;
                    let lo_ch = geom.channel_of(tc - hb);
                    let hi_ch = geom.channel_of(tc + hb);
                    tcs[b] = tc;
                    c0s[b] = (lo_ch.floor().max(0.0)) as i32;
                    c1s[b] = (hi_ch.ceil() as i32).min(nch1);
                }
                for b in 0..bn {
                    let tc = tcs[b];
                    let (c0, c1) = (c0s[b], c1s[b]);
                    let start = t0s.len();
                    if c1 >= c0 {
                        // Exclusive range: c0 >= 0 rules out overflow,
                        // and its TrustedLen extend skips the inclusive
                        // range's per-step exhaustion flag.
                        t0s.extend(
                            (c0..c1 + 1).map(|ch| geom.channel_center(ch as usize) - half_c - tc),
                        );
                    }
                    spans[b * nviews + v] = (c0 as u32, start as u32, (t0s.len() - start) as u32);
                }
                // Evaluate this view's staged range in one branchless
                // pass: the canonical mean_over(t0, t0 + spacing)
                // arithmetic with cumulative() replaced by its
                // bitwise-equal select form and the view's trapezoid
                // held in registers. Written through a pre-sized slice
                // (not push) so the loop stays free of capacity checks
                // and the lanes pack.
                entries.resize(t0s.len(), 0.0);
                for (o, &a) in entries[vs_start..].iter_mut().zip(&t0s[vs_start..]) {
                    let b = a + spacing;
                    let w = b - a;
                    let integral = (trap.cumulative_select(b) - trap.cumulative_select(a)).max(0.0);
                    let e = integral / w;
                    *o = if w <= 0.0 { 0.0 } else { e };
                }
            }

            // Voxel-major run extraction: the scalar walk keeps the
            // contiguous streak of above-threshold entries starting at
            // the first qualifying channel and stops at the first gap.
            // Locating the streak bounds first lets the entries land as
            // one slice copy instead of per-element pushes.
            for b in 0..bn {
                let local = block_lo - lo + b;
                for v in 0..nviews {
                    let (c0, start, len) = spans[b * nviews + v];
                    let evs = &entries[start as usize..(start + len) as usize];
                    let mut s = 0usize;
                    while s < evs.len() && evs[s] <= MIN_ENTRY {
                        s += 1;
                    }
                    let mut e = s;
                    while e < evs.len() && evs[e] > MIN_ENTRY {
                        e += 1;
                    }
                    let idx = local * nviews + v;
                    if e > s {
                        first_channel[idx] = (c0 as usize + s) as u16;
                        count[idx] = (e - s) as u16;
                        values.extend_from_slice(&evs[s..e]);
                    } else {
                        first_channel[idx] = 0;
                        count[idx] = 0;
                    }
                }
                voxel_offset.push(values.len() as u64);
            }
            block_lo += bn;
        }
        values.shrink_to_fit();
        SystemMatrix { geom: *geom, voxel_offset, first_channel, count, values }
    }

    /// The geometry this matrix was built for.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// Column (all entries across views) of voxel `j`.
    #[inline]
    pub fn column(&self, j: usize) -> ColumnView<'_> {
        let nviews = self.geom.num_views;
        let v0 = self.voxel_offset[j] as usize;
        let v1 = self.voxel_offset[j + 1] as usize;
        ColumnView {
            first_channel: &self.first_channel[j * nviews..(j + 1) * nviews],
            count: &self.count[j * nviews..(j + 1) * nviews],
            values: &self.values[v0..v1],
        }
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Mean entries per (voxel, view) pair — the "average channels per
    /// voxel per view" of the paper's intra-voxel parallelism estimate.
    pub fn mean_channels_per_view(&self) -> f32 {
        self.nnz() as f32 / (self.geom.grid.num_voxels() * self.geom.num_views) as f32
    }

    /// Approximate resident bytes of the sparse storage (float values).
    pub fn bytes(&self) -> usize {
        self.values.len() * 4
            + self.first_channel.len() * 2
            + self.count.len() * 2
            + self.voxel_offset.len() * 8
    }

    /// Forward projection `y = A x`.
    ///
    /// Grids up to [`FORWARD_CHUNK`] voxels (the tiny and test scales)
    /// run the historical single-pass accumulation. Larger grids split
    /// into fixed `FORWARD_CHUNK`-voxel chunks whose partial sinograms
    /// are computed in parallel and reduced in chunk order — the
    /// partitioning depends only on the grid, never on the worker
    /// count, so the result is identical for any number of threads.
    pub fn forward(&self, image: &Image) -> Sinogram {
        assert_eq!(image.grid(), self.geom.grid);
        let nvox = self.geom.grid.num_voxels();
        if nvox <= FORWARD_CHUNK {
            let mut y = Sinogram::zeros(&self.geom);
            self.forward_range(image, 0, nvox, &mut y);
            return y;
        }
        let nchunks = nvox.div_ceil(FORWARD_CHUNK);
        let parts: Vec<Sinogram> = mbir_parallel::par_map(0, nchunks, |c| {
            let lo = c * FORWARD_CHUNK;
            let hi = ((c + 1) * FORWARD_CHUNK).min(nvox);
            let mut part = Sinogram::zeros(&self.geom);
            self.forward_range(image, lo, hi, &mut part);
            part
        });
        // Ordered reduction: chunk partials are summed in chunk order,
        // so floating-point reassociation happens only at the fixed
        // chunk boundaries.
        let mut y = Sinogram::zeros(&self.geom);
        for part in &parts {
            for (o, &p) in y.data_mut().iter_mut().zip(part.data()) {
                *o += p;
            }
        }
        y
    }

    /// Scatter the contributions of voxels `lo..hi` into `y`.
    fn forward_range(&self, image: &Image, lo: usize, hi: usize, y: &mut Sinogram) {
        for j in lo..hi {
            let xj = image.get(j);
            if xj == 0.0 {
                continue;
            }
            for seg in self.column(j).segments() {
                let row = y.view_mut(seg.view);
                for (k, &a) in seg.values.iter().enumerate() {
                    row[seg.first_channel + k] += a * xj;
                }
            }
        }
    }

    /// Back projection `A^T s` (used to verify adjointness and by FBP
    /// cross-checks). Voxels are independent gathers, so the parallel
    /// map is bitwise identical to the sequential loop at any thread
    /// count.
    pub fn back(&self, s: &Sinogram) -> Image {
        let nvox = self.geom.grid.num_voxels();
        let vals: Vec<f32> = mbir_parallel::par_map(0, nvox, |j| {
            let mut acc = 0.0f64;
            for seg in self.column(j).segments() {
                let row = s.view(seg.view);
                for (k, &a) in seg.values.iter().enumerate() {
                    acc += (a * row[seg.first_channel + k]) as f64;
                }
            }
            acc as f32
        });
        Image::from_vec(self.geom.grid, vals)
    }

    /// `sum_i sum_c A[j][i,c]^2` for voxel `j` (unweighted theta2).
    pub fn column_norm_sq(&self, j: usize) -> f32 {
        self.column(j).values_flat().iter().map(|&a| a * a).sum()
    }
}

/// Borrowed view of one voxel's column.
#[derive(Debug, Clone, Copy)]
pub struct ColumnView<'a> {
    first_channel: &'a [u16],
    count: &'a [u16],
    values: &'a [f32],
}

/// One view's contiguous run of entries within a column.
#[derive(Debug, Clone, Copy)]
pub struct Segment<'a> {
    /// View index.
    pub view: usize,
    /// First channel of the run.
    pub first_channel: usize,
    /// The entries for channels `first_channel ..`.
    pub values: &'a [f32],
}

impl<'a> ColumnView<'a> {
    /// Iterate the per-view runs in view order.
    pub fn segments(&self) -> impl Iterator<Item = Segment<'a>> + '_ {
        let mut off = 0usize;
        (0..self.first_channel.len()).map(move |v| {
            let n = self.count[v] as usize;
            let seg = Segment {
                view: v,
                first_channel: self.first_channel[v] as usize,
                values: &self.values[off..off + n],
            };
            off += n;
            seg
        })
    }

    /// Run description for one view: `(first_channel, count)`.
    #[inline]
    pub fn run(&self, view: usize) -> (usize, usize) {
        (self.first_channel[view] as usize, self.count[view] as usize)
    }

    /// Per-view first channels, one per view (raw CSR slice — lets hot
    /// loops walk runs without constructing `Segment`s).
    #[inline]
    pub fn first_channels(&self) -> &'a [u16] {
        self.first_channel
    }

    /// Per-view run lengths, co-indexed with [`Self::first_channels`].
    #[inline]
    pub fn counts(&self) -> &'a [u16] {
        self.count
    }

    /// All entries, flat across views.
    #[inline]
    pub fn values_flat(&self) -> &'a [f32] {
        self.values
    }

    /// Number of views.
    #[inline]
    pub fn num_views(&self) -> usize {
        self.first_channel.len()
    }

    /// Total entries in this column (the dot-product length of the
    /// paper's intra-voxel parallelism).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Largest entry (used for u8 quantization scaling).
    pub fn max_value(&self) -> f32 {
        self.values.iter().fold(0.0f32, |m, &v| m.max(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ImageGrid;

    fn small() -> (Geometry, SystemMatrix) {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        (g, a)
    }

    #[test]
    fn entries_nonnegative_and_bounded() {
        let (g, a) = small();
        let max_len = g.grid.pixel_size * std::f32::consts::SQRT_2;
        for &v in &a.values {
            assert!(v >= 0.0 && v <= max_len + 1e-4);
        }
    }

    #[test]
    fn row_sums_match_path_length() {
        // Sum over channels of mean-length * channel width equals the
        // trapezoid area within the detector: for a voxel well inside
        // the FOV, sum_c A[c] * dc = pixel_size^2 for every view.
        let (g, a) = small();
        let j = g.grid.index(g.grid.ny / 2, g.grid.nx / 2);
        let col = a.column(j);
        for seg in col.segments() {
            let s: f32 = seg.values.iter().sum();
            assert!(
                (s * g.channel_spacing - g.grid.pixel_size * g.grid.pixel_size).abs() < 1e-3,
                "view {}: sum {}",
                seg.view,
                s
            );
        }
    }

    #[test]
    fn trace_is_sinusoidal() {
        // The first-channel trace of an off-center voxel follows
        // round(channel_of(x cos + y sin)) to within the footprint width.
        let (g, a) = small();
        let (row, col) = (4, 18);
        let j = g.grid.index(row, col);
        let x = g.grid.x_of(col);
        let y = g.grid.y_of(row);
        for seg in a.column(j).segments() {
            let tc = g.project_point(seg.view, x, y);
            let center_ch = g.channel_of(tc);
            assert!(
                (seg.first_channel as f32 - center_ch).abs() < 3.0,
                "view {}: first {} vs center {}",
                seg.view,
                seg.first_channel,
                center_ch
            );
        }
    }

    #[test]
    fn forward_of_zero_is_zero() {
        let (g, a) = small();
        let y = a.forward(&Image::zeros(g.grid));
        assert_eq!(y.max_abs(), 0.0);
    }

    #[test]
    fn forward_linear_in_image() {
        let (g, a) = small();
        let mut img = Image::zeros(g.grid);
        img.set(g.grid.index(10, 12), 1.0);
        let y1 = a.forward(&img);
        img.set(g.grid.index(10, 12), 2.0);
        let y2 = a.forward(&img);
        for (b, d) in y1.data().iter().zip(y2.data()) {
            assert!((d - 2.0 * b).abs() < 1e-5);
        }
    }

    #[test]
    fn adjointness() {
        // <A x, s> == <x, A^T s> for random-ish x, s.
        let (g, a) = small();
        let mut img = Image::zeros(g.grid);
        for j in 0..g.grid.num_voxels() {
            img.set(j, ((j * 2654435761) % 97) as f32 / 97.0);
        }
        let mut s = Sinogram::zeros(&g);
        for i in 0..s.data().len() {
            s.data_mut()[i] = ((i * 40503) % 89) as f32 / 89.0;
        }
        let ax = a.forward(&img);
        let ats = a.back(&s);
        let lhs: f64 = ax.data().iter().zip(s.data()).map(|(&p, &q)| (p as f64) * (q as f64)).sum();
        let rhs: f64 =
            img.data().iter().zip(ats.data()).map(|(&p, &q)| (p as f64) * (q as f64)).sum();
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        assert!(((lhs - rhs) / scale).abs() < 1e-5, "lhs {lhs} rhs {rhs}");
    }

    #[test]
    fn column_norm_matches_flat_values() {
        let (g, a) = small();
        let j = g.grid.index(3, 3);
        let manual: f32 = a.column(j).values_flat().iter().map(|&v| v * v).sum();
        assert_eq!(manual, a.column_norm_sq(j));
    }

    #[test]
    fn segments_cover_all_values() {
        let (g, a) = small();
        for j in (0..g.grid.num_voxels()).step_by(37) {
            let col = a.column(j);
            let total: usize = col.segments().map(|s| s.values.len()).sum();
            assert_eq!(total, col.nnz());
        }
    }

    #[test]
    fn mean_channels_is_about_sqrt2_plus_one() {
        // With channel pitch == pixel size, the footprint spans between
        // 1 and ~2.41 channels, so the mean run length is ~2-3.
        let (_, a) = small();
        let m = a.mean_channels_per_view();
        assert!((1.5..=3.5).contains(&m), "mean {m}");
    }

    #[test]
    fn lane_build_is_bit_identical_to_scalar() {
        // The tentpole invariant for the build: the staged branchless
        // backend reproduces the branchy walk bit for bit, including a
        // detector-clipped geometry where corner runs are truncated.
        for g in [Geometry::tiny_scale(), Geometry::new(16, 36, 1.0, ImageGrid::square(24, 1.0))] {
            let scalar = SystemMatrix::compute_range_scalar(&g, 0, g.grid.num_voxels());
            let lanes = SystemMatrix::compute_range_lanes(&g, 0, g.grid.num_voxels());
            assert_eq!(scalar.voxel_offset, lanes.voxel_offset);
            assert_eq!(scalar.first_channel, lanes.first_channel);
            assert_eq!(scalar.count, lanes.count);
            let sb: Vec<u32> = scalar.values.iter().map(|v| v.to_bits()).collect();
            let lb: Vec<u32> = lanes.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, lb);
        }
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let g = Geometry::tiny_scale();
        let seq = SystemMatrix::compute(&g);
        for threads in [1usize, 2, 3, 5] {
            let par = SystemMatrix::compute_parallel(&g, threads);
            assert_eq!(par.voxel_offset, seq.voxel_offset, "{threads} threads");
            assert_eq!(par.first_channel, seq.first_channel);
            assert_eq!(par.count, seq.count);
            assert_eq!(par.values, seq.values);
        }
    }

    #[test]
    fn parallel_build_handles_uneven_splits() {
        // 24x24 = 576 voxels over 7 threads: ragged last chunk.
        let g = Geometry::tiny_scale();
        let seq = SystemMatrix::compute(&g);
        let par = SystemMatrix::compute_parallel(&g, 7);
        assert_eq!(par.nnz(), seq.nnz());
        for j in (0..g.grid.num_voxels()).step_by(29) {
            assert_eq!(par.column(j).values_flat(), seq.column(j).values_flat());
        }
    }

    #[test]
    fn forward_chunked_matches_ordered_reduction() {
        // 72x72 = 5184 voxels exceeds FORWARD_CHUNK, exercising the
        // parallel chunked path on a cheap 8-view geometry.
        let g = Geometry::new(8, 110, 1.0, ImageGrid::square(72, 1.0));
        let a = SystemMatrix::compute(&g);
        let mut img = Image::zeros(g.grid);
        for j in 0..g.grid.num_voxels() {
            img.set(j, ((j * 2654435761) % 101) as f32 / 101.0);
        }
        let got = a.forward(&img);
        // Reference: the same fixed-chunk ordered reduction, run
        // sequentially — must match bitwise at any worker count.
        let nvox = g.grid.num_voxels();
        let mut want = Sinogram::zeros(&g);
        let mut lo = 0;
        while lo < nvox {
            let hi = (lo + FORWARD_CHUNK).min(nvox);
            let mut part = Sinogram::zeros(&g);
            a.forward_range(&img, lo, hi, &mut part);
            for (o, &p) in want.data_mut().iter_mut().zip(part.data()) {
                *o += p;
            }
            lo = hi;
        }
        assert_eq!(got.data(), want.data());
        // And the chunked sum stays numerically close to the unchunked
        // single pass (reassociation only at chunk boundaries).
        let mut seq = Sinogram::zeros(&g);
        a.forward_range(&img, 0, nvox, &mut seq);
        for (p, q) in got.data().iter().zip(seq.data()) {
            assert!((p - q).abs() <= 1e-4 * q.abs().max(1.0), "{p} vs {q}");
        }
    }

    #[test]
    fn back_parallel_matches_sequential_gather() {
        let (g, a) = small();
        let mut s = Sinogram::zeros(&g);
        for i in 0..s.data().len() {
            s.data_mut()[i] = ((i * 97) % 31) as f32 / 31.0;
        }
        let got = a.back(&s);
        for j in 0..g.grid.num_voxels() {
            let mut acc = 0.0f64;
            for seg in a.column(j).segments() {
                let row = s.view(seg.view);
                for (k, &v) in seg.values.iter().enumerate() {
                    acc += (v * row[seg.first_channel + k]) as f64;
                }
            }
            assert_eq!(got.get(j), acc as f32, "voxel {j}");
        }
    }

    #[test]
    fn detector_clipping_at_fov_edge() {
        // A geometry whose detector only just covers the FOV still
        // produces valid (possibly clipped) runs for corner voxels.
        let g = Geometry::new(16, 36, 1.0, ImageGrid::square(24, 1.0));
        let a = SystemMatrix::compute(&g);
        let j = g.grid.index(0, 0);
        for seg in a.column(j).segments() {
            assert!(seg.first_channel + seg.values.len() <= g.num_channels);
        }
    }
}

//! The sparse system matrix `A`.
//!
//! `A` encodes the scanner geometry: entry `A[j][i,c]` is the mean
//! intersection length of voxel `j` with the rays of channel `c` at
//! view `i`. Following the paper, entries are stored **per voxel
//! column**, contiguous across all views ("all these A-matrix elements,
//! across all views, are placed in memory in a contiguous fashion,
//! using a sparse matrix format"), with a per-view starting channel —
//! the layout the naive GPU kernel reads and the transformed layout of
//! paper Section 4.1 is derived from.

use crate::footprint::Trapezoid;
use crate::geometry::Geometry;
use crate::image::Image;
use crate::sinogram::Sinogram;

/// Entries below `MIN_ENTRY` (mm) are dropped from the sparse storage.
const MIN_ENTRY: f32 = 1e-6;

/// Voxel-chunk granularity of the parallel forward projection. Grids
/// at or below this size (the tiny 24x24 and test 64x64 scales) take
/// the single-chunk sequential path, preserving the historical
/// bit-exact sinograms; larger grids reduce fixed chunks in order.
pub const FORWARD_CHUNK: usize = 4096;

/// Sparse system matrix in per-voxel column format.
#[derive(Debug, Clone)]
pub struct SystemMatrix {
    geom: Geometry,
    /// Per voxel: start of its entries in `values` (length `nvox + 1`).
    voxel_offset: Vec<u64>,
    /// Per `(voxel, view)`: first detector channel with a nonzero entry.
    first_channel: Vec<u16>,
    /// Per `(voxel, view)`: number of contiguous nonzero entries.
    count: Vec<u16>,
    /// All entries, voxel-major then view-major then channel-major.
    values: Vec<f32>,
}

impl SystemMatrix {
    /// Compute the full system matrix for `geom`.
    ///
    /// Cost is `O(nvox * num_views)`; at the paper's 512x512/720-view
    /// scale this builds ~500M entries (~2 GB), matching the paper's
    /// observation that the A-matrix stream is the memory bottleneck.
    pub fn compute(geom: &Geometry) -> Self {
        let nvox = geom.grid.num_voxels();
        let nviews = geom.num_views;

        // Per-view trig and footprints are voxel-independent.
        let per_view: Vec<(f32, f32, Trapezoid)> = (0..nviews)
            .map(|v| {
                let th = geom.angle(v);
                let (c, s) = (th.cos(), th.sin());
                (c, s, Trapezoid::from_cos_sin(c.abs(), s.abs(), geom.grid.pixel_size))
            })
            .collect();

        let mut voxel_offset = Vec::with_capacity(nvox + 1);
        let mut first_channel = vec![0u16; nvox * nviews];
        let mut count = vec![0u16; nvox * nviews];
        // ~3 entries per (voxel, view) at unit channel pitch.
        let mut values = Vec::with_capacity(nvox * nviews * 3);
        voxel_offset.push(0u64);

        let half_c = geom.channel_spacing / 2.0;
        for j in 0..nvox {
            let (row, col) = geom.grid.row_col(j);
            let x = geom.grid.x_of(col);
            let y = geom.grid.y_of(row);
            for (v, &(cv, sv, trap)) in per_view.iter().enumerate() {
                let tc = x * cv + y * sv;
                // Channels whose interval intersects the footprint.
                let lo = geom.channel_of(tc - trap.half_base);
                let hi = geom.channel_of(tc + trap.half_base);
                let c0 = (lo.floor().max(0.0)) as usize;
                let c1 = (hi.ceil() as isize).min(geom.num_channels as isize - 1);
                let mut first = 0usize;
                let mut n = 0usize;
                if c1 >= c0 as isize {
                    for ch in c0..=(c1 as usize) {
                        let t0 = geom.channel_center(ch) - half_c - tc;
                        let a = trap.mean_over(t0, t0 + geom.channel_spacing);
                        if a > MIN_ENTRY {
                            if n == 0 {
                                first = ch;
                            }
                            // Keep the run contiguous: interior zeros
                            // cannot occur for a concave profile, but
                            // guard anyway.
                            if n > 0 || a > MIN_ENTRY {
                                values.push(a);
                                n += 1;
                            }
                        } else if n > 0 {
                            break;
                        }
                    }
                }
                let idx = j * nviews + v;
                first_channel[idx] = first as u16;
                count[idx] = n as u16;
            }
            voxel_offset.push(values.len() as u64);
        }
        values.shrink_to_fit();
        SystemMatrix { geom: *geom, voxel_offset, first_channel, count, values }
    }

    /// Compute the system matrix with `threads` worker threads
    /// (voxel ranges are independent; results are bit-identical to
    /// [`SystemMatrix::compute`]). At the paper's 512x512/720-view
    /// scale the single-threaded build takes tens of seconds; this
    /// scales nearly linearly.
    /// `threads == 0` defers to the process-wide setting
    /// ([`mbir_parallel::threads`]).
    pub fn compute_parallel(geom: &Geometry, threads: usize) -> Self {
        let threads = mbir_parallel::resolve(threads);
        if threads == 1 {
            return Self::compute(geom);
        }
        let nvox = geom.grid.num_voxels();
        let chunk = nvox.div_ceil(threads);
        let parts: Vec<SystemMatrix> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(nvox);
                    s.spawn(move || Self::compute_range(geom, lo, hi))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        // Concatenate the per-range pieces.
        let nviews = geom.num_views;
        let mut voxel_offset = Vec::with_capacity(nvox + 1);
        let mut first_channel = Vec::with_capacity(nvox * nviews);
        let mut count = Vec::with_capacity(nvox * nviews);
        let mut values = Vec::new();
        voxel_offset.push(0u64);
        for part in parts {
            let base = values.len() as u64;
            voxel_offset.extend(part.voxel_offset[1..].iter().map(|&o| o + base));
            first_channel.extend_from_slice(&part.first_channel);
            count.extend_from_slice(&part.count);
            values.extend_from_slice(&part.values);
        }
        SystemMatrix { geom: *geom, voxel_offset, first_channel, count, values }
    }

    /// Compute the columns of voxels `lo..hi` only (a building block of
    /// [`SystemMatrix::compute_parallel`]; offsets are local).
    fn compute_range(geom: &Geometry, lo: usize, hi: usize) -> Self {
        let nviews = geom.num_views;
        let per_view: Vec<(f32, f32, Trapezoid)> = (0..nviews)
            .map(|v| {
                let th = geom.angle(v);
                let (c, s) = (th.cos(), th.sin());
                (c, s, Trapezoid::from_cos_sin(c.abs(), s.abs(), geom.grid.pixel_size))
            })
            .collect();
        let n = hi - lo;
        let mut voxel_offset = Vec::with_capacity(n + 1);
        let mut first_channel = vec![0u16; n * nviews];
        let mut count = vec![0u16; n * nviews];
        let mut values = Vec::with_capacity(n * nviews * 3);
        voxel_offset.push(0u64);
        let half_c = geom.channel_spacing / 2.0;
        for (local, j) in (lo..hi).enumerate() {
            let (row, col) = geom.grid.row_col(j);
            let x = geom.grid.x_of(col);
            let y = geom.grid.y_of(row);
            for (v, &(cv, sv, trap)) in per_view.iter().enumerate() {
                let tc = x * cv + y * sv;
                let lo_ch = geom.channel_of(tc - trap.half_base);
                let hi_ch = geom.channel_of(tc + trap.half_base);
                let c0 = (lo_ch.floor().max(0.0)) as usize;
                let c1 = (hi_ch.ceil() as isize).min(geom.num_channels as isize - 1);
                let mut first = 0usize;
                let mut nrun = 0usize;
                if c1 >= c0 as isize {
                    for ch in c0..=(c1 as usize) {
                        let t0 = geom.channel_center(ch) - half_c - tc;
                        let a = trap.mean_over(t0, t0 + geom.channel_spacing);
                        if a > MIN_ENTRY {
                            if nrun == 0 {
                                first = ch;
                            }
                            values.push(a);
                            nrun += 1;
                        } else if nrun > 0 {
                            break;
                        }
                    }
                }
                let idx = local * nviews + v;
                first_channel[idx] = first as u16;
                count[idx] = nrun as u16;
            }
            voxel_offset.push(values.len() as u64);
        }
        SystemMatrix { geom: *geom, voxel_offset, first_channel, count, values }
    }

    /// The geometry this matrix was built for.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// Column (all entries across views) of voxel `j`.
    #[inline]
    pub fn column(&self, j: usize) -> ColumnView<'_> {
        let nviews = self.geom.num_views;
        let v0 = self.voxel_offset[j] as usize;
        let v1 = self.voxel_offset[j + 1] as usize;
        ColumnView {
            first_channel: &self.first_channel[j * nviews..(j + 1) * nviews],
            count: &self.count[j * nviews..(j + 1) * nviews],
            values: &self.values[v0..v1],
        }
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Mean entries per (voxel, view) pair — the "average channels per
    /// voxel per view" of the paper's intra-voxel parallelism estimate.
    pub fn mean_channels_per_view(&self) -> f32 {
        self.nnz() as f32 / (self.geom.grid.num_voxels() * self.geom.num_views) as f32
    }

    /// Approximate resident bytes of the sparse storage (float values).
    pub fn bytes(&self) -> usize {
        self.values.len() * 4
            + self.first_channel.len() * 2
            + self.count.len() * 2
            + self.voxel_offset.len() * 8
    }

    /// Forward projection `y = A x`.
    ///
    /// Grids up to [`FORWARD_CHUNK`] voxels (the tiny and test scales)
    /// run the historical single-pass accumulation. Larger grids split
    /// into fixed `FORWARD_CHUNK`-voxel chunks whose partial sinograms
    /// are computed in parallel and reduced in chunk order — the
    /// partitioning depends only on the grid, never on the worker
    /// count, so the result is identical for any number of threads.
    pub fn forward(&self, image: &Image) -> Sinogram {
        assert_eq!(image.grid(), self.geom.grid);
        let nvox = self.geom.grid.num_voxels();
        if nvox <= FORWARD_CHUNK {
            let mut y = Sinogram::zeros(&self.geom);
            self.forward_range(image, 0, nvox, &mut y);
            return y;
        }
        let nchunks = nvox.div_ceil(FORWARD_CHUNK);
        let parts: Vec<Sinogram> = mbir_parallel::par_map(0, nchunks, |c| {
            let lo = c * FORWARD_CHUNK;
            let hi = ((c + 1) * FORWARD_CHUNK).min(nvox);
            let mut part = Sinogram::zeros(&self.geom);
            self.forward_range(image, lo, hi, &mut part);
            part
        });
        // Ordered reduction: chunk partials are summed in chunk order,
        // so floating-point reassociation happens only at the fixed
        // chunk boundaries.
        let mut y = Sinogram::zeros(&self.geom);
        for part in &parts {
            for (o, &p) in y.data_mut().iter_mut().zip(part.data()) {
                *o += p;
            }
        }
        y
    }

    /// Scatter the contributions of voxels `lo..hi` into `y`.
    fn forward_range(&self, image: &Image, lo: usize, hi: usize, y: &mut Sinogram) {
        for j in lo..hi {
            let xj = image.get(j);
            if xj == 0.0 {
                continue;
            }
            for seg in self.column(j).segments() {
                let row = y.view_mut(seg.view);
                for (k, &a) in seg.values.iter().enumerate() {
                    row[seg.first_channel + k] += a * xj;
                }
            }
        }
    }

    /// Back projection `A^T s` (used to verify adjointness and by FBP
    /// cross-checks). Voxels are independent gathers, so the parallel
    /// map is bitwise identical to the sequential loop at any thread
    /// count.
    pub fn back(&self, s: &Sinogram) -> Image {
        let nvox = self.geom.grid.num_voxels();
        let vals: Vec<f32> = mbir_parallel::par_map(0, nvox, |j| {
            let mut acc = 0.0f64;
            for seg in self.column(j).segments() {
                let row = s.view(seg.view);
                for (k, &a) in seg.values.iter().enumerate() {
                    acc += (a * row[seg.first_channel + k]) as f64;
                }
            }
            acc as f32
        });
        Image::from_vec(self.geom.grid, vals)
    }

    /// `sum_i sum_c A[j][i,c]^2` for voxel `j` (unweighted theta2).
    pub fn column_norm_sq(&self, j: usize) -> f32 {
        self.column(j).values_flat().iter().map(|&a| a * a).sum()
    }
}

/// Borrowed view of one voxel's column.
#[derive(Debug, Clone, Copy)]
pub struct ColumnView<'a> {
    first_channel: &'a [u16],
    count: &'a [u16],
    values: &'a [f32],
}

/// One view's contiguous run of entries within a column.
#[derive(Debug, Clone, Copy)]
pub struct Segment<'a> {
    /// View index.
    pub view: usize,
    /// First channel of the run.
    pub first_channel: usize,
    /// The entries for channels `first_channel ..`.
    pub values: &'a [f32],
}

impl<'a> ColumnView<'a> {
    /// Iterate the per-view runs in view order.
    pub fn segments(&self) -> impl Iterator<Item = Segment<'a>> + '_ {
        let mut off = 0usize;
        (0..self.first_channel.len()).map(move |v| {
            let n = self.count[v] as usize;
            let seg = Segment {
                view: v,
                first_channel: self.first_channel[v] as usize,
                values: &self.values[off..off + n],
            };
            off += n;
            seg
        })
    }

    /// Run description for one view: `(first_channel, count)`.
    #[inline]
    pub fn run(&self, view: usize) -> (usize, usize) {
        (self.first_channel[view] as usize, self.count[view] as usize)
    }

    /// Per-view first channels, one per view (raw CSR slice — lets hot
    /// loops walk runs without constructing `Segment`s).
    #[inline]
    pub fn first_channels(&self) -> &'a [u16] {
        self.first_channel
    }

    /// Per-view run lengths, co-indexed with [`Self::first_channels`].
    #[inline]
    pub fn counts(&self) -> &'a [u16] {
        self.count
    }

    /// All entries, flat across views.
    #[inline]
    pub fn values_flat(&self) -> &'a [f32] {
        self.values
    }

    /// Number of views.
    #[inline]
    pub fn num_views(&self) -> usize {
        self.first_channel.len()
    }

    /// Total entries in this column (the dot-product length of the
    /// paper's intra-voxel parallelism).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Largest entry (used for u8 quantization scaling).
    pub fn max_value(&self) -> f32 {
        self.values.iter().fold(0.0f32, |m, &v| m.max(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ImageGrid;

    fn small() -> (Geometry, SystemMatrix) {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        (g, a)
    }

    #[test]
    fn entries_nonnegative_and_bounded() {
        let (g, a) = small();
        let max_len = g.grid.pixel_size * std::f32::consts::SQRT_2;
        for &v in &a.values {
            assert!(v >= 0.0 && v <= max_len + 1e-4);
        }
    }

    #[test]
    fn row_sums_match_path_length() {
        // Sum over channels of mean-length * channel width equals the
        // trapezoid area within the detector: for a voxel well inside
        // the FOV, sum_c A[c] * dc = pixel_size^2 for every view.
        let (g, a) = small();
        let j = g.grid.index(g.grid.ny / 2, g.grid.nx / 2);
        let col = a.column(j);
        for seg in col.segments() {
            let s: f32 = seg.values.iter().sum();
            assert!(
                (s * g.channel_spacing - g.grid.pixel_size * g.grid.pixel_size).abs() < 1e-3,
                "view {}: sum {}",
                seg.view,
                s
            );
        }
    }

    #[test]
    fn trace_is_sinusoidal() {
        // The first-channel trace of an off-center voxel follows
        // round(channel_of(x cos + y sin)) to within the footprint width.
        let (g, a) = small();
        let (row, col) = (4, 18);
        let j = g.grid.index(row, col);
        let x = g.grid.x_of(col);
        let y = g.grid.y_of(row);
        for seg in a.column(j).segments() {
            let tc = g.project_point(seg.view, x, y);
            let center_ch = g.channel_of(tc);
            assert!(
                (seg.first_channel as f32 - center_ch).abs() < 3.0,
                "view {}: first {} vs center {}",
                seg.view,
                seg.first_channel,
                center_ch
            );
        }
    }

    #[test]
    fn forward_of_zero_is_zero() {
        let (g, a) = small();
        let y = a.forward(&Image::zeros(g.grid));
        assert_eq!(y.max_abs(), 0.0);
    }

    #[test]
    fn forward_linear_in_image() {
        let (g, a) = small();
        let mut img = Image::zeros(g.grid);
        img.set(g.grid.index(10, 12), 1.0);
        let y1 = a.forward(&img);
        img.set(g.grid.index(10, 12), 2.0);
        let y2 = a.forward(&img);
        for (b, d) in y1.data().iter().zip(y2.data()) {
            assert!((d - 2.0 * b).abs() < 1e-5);
        }
    }

    #[test]
    fn adjointness() {
        // <A x, s> == <x, A^T s> for random-ish x, s.
        let (g, a) = small();
        let mut img = Image::zeros(g.grid);
        for j in 0..g.grid.num_voxels() {
            img.set(j, ((j * 2654435761) % 97) as f32 / 97.0);
        }
        let mut s = Sinogram::zeros(&g);
        for i in 0..s.data().len() {
            s.data_mut()[i] = ((i * 40503) % 89) as f32 / 89.0;
        }
        let ax = a.forward(&img);
        let ats = a.back(&s);
        let lhs: f64 = ax.data().iter().zip(s.data()).map(|(&p, &q)| (p as f64) * (q as f64)).sum();
        let rhs: f64 =
            img.data().iter().zip(ats.data()).map(|(&p, &q)| (p as f64) * (q as f64)).sum();
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        assert!(((lhs - rhs) / scale).abs() < 1e-5, "lhs {lhs} rhs {rhs}");
    }

    #[test]
    fn column_norm_matches_flat_values() {
        let (g, a) = small();
        let j = g.grid.index(3, 3);
        let manual: f32 = a.column(j).values_flat().iter().map(|&v| v * v).sum();
        assert_eq!(manual, a.column_norm_sq(j));
    }

    #[test]
    fn segments_cover_all_values() {
        let (g, a) = small();
        for j in (0..g.grid.num_voxels()).step_by(37) {
            let col = a.column(j);
            let total: usize = col.segments().map(|s| s.values.len()).sum();
            assert_eq!(total, col.nnz());
        }
    }

    #[test]
    fn mean_channels_is_about_sqrt2_plus_one() {
        // With channel pitch == pixel size, the footprint spans between
        // 1 and ~2.41 channels, so the mean run length is ~2-3.
        let (_, a) = small();
        let m = a.mean_channels_per_view();
        assert!((1.5..=3.5).contains(&m), "mean {m}");
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let g = Geometry::tiny_scale();
        let seq = SystemMatrix::compute(&g);
        for threads in [1usize, 2, 3, 5] {
            let par = SystemMatrix::compute_parallel(&g, threads);
            assert_eq!(par.voxel_offset, seq.voxel_offset, "{threads} threads");
            assert_eq!(par.first_channel, seq.first_channel);
            assert_eq!(par.count, seq.count);
            assert_eq!(par.values, seq.values);
        }
    }

    #[test]
    fn parallel_build_handles_uneven_splits() {
        // 24x24 = 576 voxels over 7 threads: ragged last chunk.
        let g = Geometry::tiny_scale();
        let seq = SystemMatrix::compute(&g);
        let par = SystemMatrix::compute_parallel(&g, 7);
        assert_eq!(par.nnz(), seq.nnz());
        for j in (0..g.grid.num_voxels()).step_by(29) {
            assert_eq!(par.column(j).values_flat(), seq.column(j).values_flat());
        }
    }

    #[test]
    fn forward_chunked_matches_ordered_reduction() {
        // 72x72 = 5184 voxels exceeds FORWARD_CHUNK, exercising the
        // parallel chunked path on a cheap 8-view geometry.
        let g = Geometry::new(8, 110, 1.0, ImageGrid::square(72, 1.0));
        let a = SystemMatrix::compute(&g);
        let mut img = Image::zeros(g.grid);
        for j in 0..g.grid.num_voxels() {
            img.set(j, ((j * 2654435761) % 101) as f32 / 101.0);
        }
        let got = a.forward(&img);
        // Reference: the same fixed-chunk ordered reduction, run
        // sequentially — must match bitwise at any worker count.
        let nvox = g.grid.num_voxels();
        let mut want = Sinogram::zeros(&g);
        let mut lo = 0;
        while lo < nvox {
            let hi = (lo + FORWARD_CHUNK).min(nvox);
            let mut part = Sinogram::zeros(&g);
            a.forward_range(&img, lo, hi, &mut part);
            for (o, &p) in want.data_mut().iter_mut().zip(part.data()) {
                *o += p;
            }
            lo = hi;
        }
        assert_eq!(got.data(), want.data());
        // And the chunked sum stays numerically close to the unchunked
        // single pass (reassociation only at chunk boundaries).
        let mut seq = Sinogram::zeros(&g);
        a.forward_range(&img, 0, nvox, &mut seq);
        for (p, q) in got.data().iter().zip(seq.data()) {
            assert!((p - q).abs() <= 1e-4 * q.abs().max(1.0), "{p} vs {q}");
        }
    }

    #[test]
    fn back_parallel_matches_sequential_gather() {
        let (g, a) = small();
        let mut s = Sinogram::zeros(&g);
        for i in 0..s.data().len() {
            s.data_mut()[i] = ((i * 97) % 31) as f32 / 31.0;
        }
        let got = a.back(&s);
        for j in 0..g.grid.num_voxels() {
            let mut acc = 0.0f64;
            for seg in a.column(j).segments() {
                let row = s.view(seg.view);
                for (k, &v) in seg.values.iter().enumerate() {
                    acc += (v * row[seg.first_channel + k]) as f64;
                }
            }
            assert_eq!(got.get(j), acc as f32, "voxel {j}");
        }
    }

    #[test]
    fn detector_clipping_at_fov_edge() {
        // A geometry whose detector only just covers the FOV still
        // produces valid (possibly clipped) runs for corner voxels.
        let g = Geometry::new(16, 36, 1.0, ImageGrid::square(24, 1.0));
        let a = SystemMatrix::compute(&g);
        let j = g.grid.index(0, 0);
        for seg in a.column(j).segments() {
            assert!(seg.first_channel + seg.values.len() <= g.num_channels);
        }
    }
}

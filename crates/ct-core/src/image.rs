//! Dense 2-D image container (the `x` of `y = A x`), row-major.

use crate::geometry::ImageGrid;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, Ordering};

/// A reconstruction image: `ny` rows by `nx` columns of linear
/// attenuation coefficients (1/mm), stored row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    grid: ImageGrid,
    data: Vec<f32>,
}

impl Image {
    /// An all-zero (air) image on `grid`.
    pub fn zeros(grid: ImageGrid) -> Self {
        Image { grid, data: vec![0.0; grid.num_voxels()] }
    }

    /// Wrap existing row-major data.
    pub fn from_vec(grid: ImageGrid, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), grid.num_voxels());
        Image { grid, data }
    }

    /// The grid this image lives on.
    #[inline]
    pub fn grid(&self) -> ImageGrid {
        self.grid
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Value at linear voxel index.
    #[inline]
    pub fn get(&self, idx: usize) -> f32 {
        self.data[idx]
    }

    /// Set value at linear voxel index.
    #[inline]
    pub fn set(&mut self, idx: usize, v: f32) {
        self.data[idx] = v;
    }

    /// Value at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        self.data[self.grid.index(row, col)]
    }

    /// Mutable value at `(row, col)`.
    #[inline]
    pub fn at_mut(&mut self, row: usize, col: usize) -> &mut f32 {
        let i = self.grid.index(row, col);
        &mut self.data[i]
    }

    /// The 8-connected neighbours of voxel `idx` that lie inside the
    /// grid, together with the MRF weight class: `true` for the four
    /// edge neighbours, `false` for the four diagonal neighbours.
    pub fn neighbors8(&self, idx: usize) -> Neighbors8 {
        Neighbors8::of_grid(self.grid, idx)
    }

    /// Root-mean-square difference against `other`, in image units.
    pub fn rmse(&self, other: &Image) -> f32 {
        assert_eq!(self.grid, other.grid);
        let n = self.data.len() as f64;
        let ss: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum();
        ((ss / n) as f32).sqrt()
    }

    /// Maximum absolute value.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Fraction of exactly zero voxels (drives zero-skipping rates).
    pub fn zero_fraction(&self) -> f32 {
        let z = self.data.iter().filter(|&&v| v == 0.0).count();
        z as f32 / self.data.len() as f32
    }

    /// A thread-shareable view of this image's storage (see
    /// [`SharedImage`]). The view borrows the image mutably, so no
    /// plain access can race with it.
    pub fn as_shared(&mut self) -> SharedImage<'_> {
        let grid = self.grid;
        let data = &mut self.data[..];
        // In-place reinterpretation of the f32 buffer as atomic cells:
        // AtomicU32 has the same size and alignment as f32, and the
        // exclusive borrow taken here guarantees no plain f32 access
        // aliases the atomics for the view's lifetime.
        let cells = unsafe {
            std::slice::from_raw_parts(data.as_mut_ptr() as *const AtomicU32, data.len())
        };
        SharedImage { grid, cells }
    }
}

/// A borrowed view of an [`Image`] whose cells are relaxed-atomic f32s,
/// for concurrent per-SV updates whose write sets are disjoint (the
/// checkerboard guarantee) while neighbour reads may cross into other
/// (frozen) SVs.
#[derive(Clone, Copy)]
pub struct SharedImage<'a> {
    grid: ImageGrid,
    cells: &'a [AtomicU32],
}

impl SharedImage<'_> {
    /// The grid this image lives on.
    #[inline]
    pub fn grid(&self) -> ImageGrid {
        self.grid
    }

    /// Value at linear voxel index.
    #[inline]
    pub fn get(&self, idx: usize) -> f32 {
        f32::from_bits(self.cells[idx].load(Ordering::Relaxed))
    }

    /// Store value at linear voxel index.
    #[inline]
    pub fn set(&self, idx: usize, v: f32) {
        self.cells[idx].store(v.to_bits(), Ordering::Relaxed);
    }

    /// The 8-connected in-grid neighbours of voxel `idx` (same contract
    /// as [`Image::neighbors8`]).
    pub fn neighbors8(&self, idx: usize) -> Neighbors8 {
        Neighbors8::of_grid(self.grid, idx)
    }

    /// Whether voxel `idx` and its whole neighbourhood are zero (the
    /// zero-skipping test of `mbir::update::zero_skippable`, against
    /// the shared view).
    pub fn zero_skippable(&self, idx: usize) -> bool {
        self.get(idx) == 0.0 && self.neighbors8(idx).iter().all(|(k, _)| self.get(k) == 0.0)
    }
}

/// Fixed-size neighbour list returned by [`Image::neighbors8`].
#[derive(Debug, Clone, Copy)]
pub struct Neighbors8 {
    items: [(usize, bool); 8],
    len: usize,
}

impl Neighbors8 {
    /// The in-bounds 8-neighbourhood of voxel `idx` on `grid`, without
    /// needing an [`Image`] (shared-image implementations use this).
    pub fn of_grid(grid: ImageGrid, idx: usize) -> Neighbors8 {
        let (row, col) = grid.row_col(idx);
        let mut out = Neighbors8 { items: [(0, false); 8], len: 0 };
        for dr in -1i32..=1 {
            for dc in -1i32..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let r = row as i32 + dr;
                let c = col as i32 + dc;
                if r < 0 || c < 0 || r as usize >= grid.ny || c as usize >= grid.nx {
                    continue;
                }
                let edge = dr == 0 || dc == 0;
                out.items[out.len] = (grid.index(r as usize, c as usize), edge);
                out.len += 1;
            }
        }
        out
    }

    /// Neighbour voxel indices with their edge/diagonal class.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        self.items[..self.len].iter().copied()
    }

    /// Number of in-bounds neighbours (3, 5, or 8).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty (never true on grids >= 2x2).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut img = Image::zeros(ImageGrid::square(4, 1.0));
        assert_eq!(img.data().len(), 16);
        *img.at_mut(2, 3) = 5.0;
        assert_eq!(img.at(2, 3), 5.0);
        assert_eq!(img.get(2 * 4 + 3), 5.0);
    }

    #[test]
    fn neighbor_counts() {
        let img = Image::zeros(ImageGrid::square(4, 1.0));
        // Corner voxel: 3 neighbours.
        assert_eq!(img.neighbors8(0).len(), 3);
        // Edge voxel: 5 neighbours.
        assert_eq!(img.neighbors8(1).len(), 5);
        // Interior voxel: 8 neighbours.
        assert_eq!(img.neighbors8(5).len(), 8);
    }

    #[test]
    fn neighbor_edge_classes() {
        let img = Image::zeros(ImageGrid::square(3, 1.0));
        let n = img.neighbors8(4); // center
        let edges = n.iter().filter(|&(_, e)| e).count();
        let diags = n.iter().filter(|&(_, e)| !e).count();
        assert_eq!(edges, 4);
        assert_eq!(diags, 4);
    }

    #[test]
    fn rmse_zero_for_identical() {
        let img = Image::zeros(ImageGrid::square(8, 1.0));
        assert_eq!(img.rmse(&img), 0.0);
    }

    #[test]
    fn rmse_of_constant_offset() {
        let grid = ImageGrid::square(8, 1.0);
        let a = Image::zeros(grid);
        let b = Image::from_vec(grid, vec![2.0; 64]);
        assert!((a.rmse(&b) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_fraction_counts() {
        let grid = ImageGrid::square(2, 1.0);
        let img = Image::from_vec(grid, vec![0.0, 1.0, 0.0, 3.0]);
        assert_eq!(img.zero_fraction(), 0.5);
    }

    #[test]
    fn shared_view_reads_and_writes_through() {
        let grid = ImageGrid::square(4, 1.0);
        let mut img = Image::from_vec(grid, (0..16).map(|i| i as f32 * 0.5).collect());
        let shared = img.as_shared();
        assert_eq!(shared.get(7), 3.5);
        shared.set(7, -1.25);
        assert_eq!(shared.get(7), -1.25);
        assert_eq!(img.get(7), -1.25);
    }

    #[test]
    fn shared_zero_skip_matches_plain_rule() {
        let grid = ImageGrid::square(8, 1.0);
        let mut img = Image::zeros(grid);
        img.set(grid.index(3, 3), 1.0);
        let expect: Vec<bool> = (0..64)
            .map(|j| img.get(j) == 0.0 && img.neighbors8(j).iter().all(|(k, _)| img.get(k) == 0.0))
            .collect();
        let shared = img.as_shared();
        for (j, &e) in expect.iter().enumerate() {
            assert_eq!(shared.zero_skippable(j), e, "voxel {j}");
        }
    }

    #[test]
    fn shared_concurrent_disjoint_writes() {
        let grid = ImageGrid::square(8, 1.0);
        let mut img = Image::zeros(grid);
        let shared = img.as_shared();
        std::thread::scope(|s| {
            for t in 0..4usize {
                s.spawn(move || {
                    for j in (t..64).step_by(4) {
                        shared.set(j, j as f32);
                    }
                });
            }
        });
        for j in 0..64 {
            assert_eq!(img.get(j), j as f32);
        }
    }
}

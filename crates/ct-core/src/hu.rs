//! Hounsfield-unit conversions and the convergence metric of the
//! paper's evaluation: RMSE against a golden image in Hounsfield units,
//! with convergence declared below 10 HU (the level at which prior
//! work found no remaining visible artifacts).

use crate::image::Image;
use crate::phantom::MU_WATER;

/// The paper's convergence threshold: RMSE below 10 HU.
pub const CONVERGENCE_HU: f32 = 10.0;

/// Convert linear attenuation (1/mm) to Hounsfield units.
#[inline]
pub fn hu_from_mu(mu: f32) -> f32 {
    1000.0 * (mu - MU_WATER) / MU_WATER
}

/// Convert Hounsfield units to linear attenuation (1/mm).
#[inline]
pub fn mu_from_hu(hu: f32) -> f32 {
    MU_WATER * (hu / 1000.0 + 1.0)
}

/// RMSE between two attenuation images, expressed in HU.
///
/// Differences scale by `1000 / MU_WATER`; the offset cancels.
pub fn rmse_hu(a: &Image, b: &Image) -> f32 {
    a.rmse(b) * 1000.0 / MU_WATER
}

/// True when `a` has converged to the golden image per the paper's
/// criterion.
pub fn converged(a: &Image, golden: &Image) -> bool {
    rmse_hu(a, golden) < CONVERGENCE_HU
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ImageGrid;

    #[test]
    fn water_is_zero_air_is_minus_1000() {
        assert_eq!(hu_from_mu(MU_WATER), 0.0);
        assert_eq!(hu_from_mu(0.0), -1000.0);
    }

    #[test]
    fn conversions_invert() {
        for hu in [-1000.0, -500.0, 0.0, 80.0, 3000.0] {
            assert!((hu_from_mu(mu_from_hu(hu)) - hu).abs() < 1e-3);
        }
    }

    #[test]
    fn rmse_hu_scales() {
        let grid = ImageGrid::square(4, 1.0);
        let a = Image::zeros(grid);
        // A uniform 1-HU difference.
        let b = Image::from_vec(grid, vec![MU_WATER / 1000.0; 16]);
        assert!((rmse_hu(&a, &b) - 1.0).abs() < 1e-4);
        assert!(converged(&a, &b));
        let c = Image::from_vec(grid, vec![MU_WATER / 50.0; 16]); // 20 HU
        assert!(!converged(&a, &c));
    }
}

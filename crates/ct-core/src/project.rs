//! Scan simulation: forward projection plus the transmission noise
//! model that produces the weight sinogram `w`.
//!
//! In transmission CT the detector counts photons `I = I0 exp(-y)`
//! where `y` is the line integral. The log-domain measurement
//! `yhat = -ln(I / I0)` then has variance approximately
//! `exp(y) / I0`, so MBIR weights each ray by the inverse variance
//! `w = I0 exp(-y)` — the paper's "weighting matrix contains the
//! inverse variance of the scanner noise". Weights are kept
//! *unnormalized* (they carry the photon-count scale) so the
//! data/prior balance of the MAP cost is statistically meaningful;
//! noiseless scans use unit weights.

use crate::image::Image;
use crate::sinogram::Sinogram;
use crate::sysmat::SystemMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Photon-count noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Unattenuated photon count per ray; higher is cleaner.
    pub i0: f32,
}

impl NoiseModel {
    /// A dose typical of the security scans the paper evaluates.
    pub fn default_dose() -> Self {
        NoiseModel { i0: 2.0e4 }
    }
}

/// A simulated acquisition: the measurement sinogram, the inverse
/// variance weights, and the ground-truth image it came from.
#[derive(Debug, Clone)]
pub struct Scan {
    /// Measured (noisy) line integrals `y`.
    pub y: Sinogram,
    /// Normalized inverse-variance weights `w`, in `(0, 1]`.
    pub weights: Sinogram,
    /// The image the measurement was generated from.
    pub ground_truth: Image,
}

/// Simulate a scan of `truth` through `a`, optionally adding
/// transmission noise (Gaussian approximation of the photon
/// statistics). `seed` makes the scan deterministic.
pub fn scan(a: &SystemMatrix, truth: &Image, noise: Option<NoiseModel>, seed: u64) -> Scan {
    let clean = a.forward(truth);
    let mut y = clean.clone();
    let mut weights = Sinogram::filled(a.geometry(), 1.0);
    if let Some(nm) = noise {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = y.data().len();
        for i in 0..n {
            let line = clean.data()[i];
            let sigma = (line.exp() / nm.i0).sqrt();
            y.data_mut()[i] = line + sigma * standard_normal(&mut rng);
            // Inverse variance of the log-domain measurement.
            weights.data_mut()[i] = nm.i0 * (-line).exp();
        }
    }
    Scan { y, weights, ground_truth: truth.clone() }
}

/// One standard normal sample via Box-Muller (rand 0.9 ships no
/// distributions; this avoids an extra dependency).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use crate::phantom::Phantom;

    #[test]
    fn noiseless_scan_matches_forward() {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let img = Phantom::water_cylinder(0.5).render(g.grid, 1);
        let s = scan(&a, &img, None, 0);
        assert_eq!(s.y, a.forward(&img));
        assert!(s.weights.data().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn noise_is_deterministic_by_seed() {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let img = Phantom::water_cylinder(0.5).render(g.grid, 1);
        let s1 = scan(&a, &img, Some(NoiseModel::default_dose()), 42);
        let s2 = scan(&a, &img, Some(NoiseModel::default_dose()), 42);
        let s3 = scan(&a, &img, Some(NoiseModel::default_dose()), 43);
        assert_eq!(s1.y, s2.y);
        assert!(s1.y != s3.y);
    }

    #[test]
    fn weights_decrease_with_attenuation() {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let img = Phantom::water_cylinder(0.8).render(g.grid, 1);
        let s = scan(&a, &img, Some(NoiseModel::default_dose()), 0);
        // The central channel at view 0 passes through the cylinder;
        // an edge channel misses it.
        let center = s.weights.at(0, g.num_channels / 2);
        let edge = s.weights.at(0, 0);
        assert!(center < edge);
        // An unattenuated ray carries the full photon count as weight.
        let nm = NoiseModel::default_dose();
        assert!((edge - nm.i0).abs() / nm.i0 < 1e-5);
        assert!(s.weights.data().iter().all(|&w| w > 0.0 && w <= nm.i0 * 1.0001));
    }

    #[test]
    fn noise_magnitude_tracks_dose() {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let img = Phantom::water_cylinder(0.5).render(g.grid, 1);
        let clean = a.forward(&img);
        let hi = scan(&a, &img, Some(NoiseModel { i0: 1.0e6 }), 1);
        let lo = scan(&a, &img, Some(NoiseModel { i0: 1.0e2 }), 1);
        let err_hi = hi.y.sub(&clean).rms();
        let err_lo = lo.y.sub(&clean).rms();
        assert!(err_hi < err_lo, "hi-dose {err_hi} vs lo-dose {err_lo}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|&s| (s - mean) * (s - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}

//! Dense sinogram container (`y`, the error sinogram `e`, and the
//! weight sinogram `w`), stored view-major: row = view, column =
//! detector channel. This matches the paper's Fig. 1b, where each view
//! angle contributes one column/row of measurements and a voxel's data
//! traces a sinusoid across views.

use crate::geometry::Geometry;
use serde::{Deserialize, Serialize};

/// A `num_views x num_channels` array of measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sinogram {
    num_views: usize,
    num_channels: usize,
    data: Vec<f32>,
}

impl Sinogram {
    /// All-zero sinogram shaped for `geom`.
    pub fn zeros(geom: &Geometry) -> Self {
        Sinogram {
            num_views: geom.num_views,
            num_channels: geom.num_channels,
            data: vec![0.0; geom.num_views * geom.num_channels],
        }
    }

    /// All-`v` sinogram shaped for `geom`.
    pub fn filled(geom: &Geometry, v: f32) -> Self {
        Sinogram {
            num_views: geom.num_views,
            num_channels: geom.num_channels,
            data: vec![v; geom.num_views * geom.num_channels],
        }
    }

    /// Wrap existing view-major data.
    pub fn from_vec(num_views: usize, num_channels: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), num_views * num_channels);
        Sinogram { num_views, num_channels, data }
    }

    /// Number of views (rows).
    #[inline]
    pub fn num_views(&self) -> usize {
        self.num_views
    }

    /// Number of channels (columns).
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Linear index of `(view, channel)`.
    #[inline]
    pub fn index(&self, view: usize, ch: usize) -> usize {
        debug_assert!(view < self.num_views && ch < self.num_channels);
        view * self.num_channels + ch
    }

    /// Value at `(view, channel)`.
    #[inline]
    pub fn at(&self, view: usize, ch: usize) -> f32 {
        self.data[self.index(view, ch)]
    }

    /// Mutable value at `(view, channel)`.
    #[inline]
    pub fn at_mut(&mut self, view: usize, ch: usize) -> &mut f32 {
        let i = self.index(view, ch);
        &mut self.data[i]
    }

    /// One view's row of channels.
    #[inline]
    pub fn view(&self, view: usize) -> &[f32] {
        &self.data[view * self.num_channels..(view + 1) * self.num_channels]
    }

    /// One view's row of channels, mutable.
    #[inline]
    pub fn view_mut(&mut self, view: usize) -> &mut [f32] {
        &mut self.data[view * self.num_channels..(view + 1) * self.num_channels]
    }

    /// Raw view-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Raw view-major data, mutable.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Root-mean-square of all entries (used to track `||e||`).
    pub fn rms(&self) -> f32 {
        let n = self.data.len() as f64;
        let ss: f64 = self.data.iter().map(|&v| (v as f64) * (v as f64)).sum();
        ((ss / n) as f32).sqrt()
    }

    /// Elementwise `self - other`.
    pub fn sub(&self, other: &Sinogram) -> Sinogram {
        assert_eq!(self.num_views, other.num_views);
        assert_eq!(self.num_channels, other.num_channels);
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a - b).collect();
        Sinogram { num_views: self.num_views, num_channels: self.num_channels, data }
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::tiny_scale()
    }

    #[test]
    fn shape_and_indexing() {
        let g = geom();
        let mut s = Sinogram::zeros(&g);
        assert_eq!(s.num_views(), g.num_views);
        assert_eq!(s.num_channels(), g.num_channels);
        *s.at_mut(3, 7) = 2.5;
        assert_eq!(s.at(3, 7), 2.5);
        assert_eq!(s.view(3)[7], 2.5);
    }

    #[test]
    fn view_rows_are_contiguous() {
        let g = geom();
        let mut s = Sinogram::zeros(&g);
        s.view_mut(1).fill(1.0);
        assert!(s.view(1).iter().all(|&v| v == 1.0));
        assert!(s.view(0).iter().all(|&v| v == 0.0));
        assert_eq!(s.data()[g.num_channels], 1.0);
    }

    #[test]
    fn rms_and_sub() {
        let g = geom();
        let a = Sinogram::filled(&g, 3.0);
        let b = Sinogram::filled(&g, 1.0);
        let d = a.sub(&b);
        assert!((d.rms() - 2.0).abs() < 1e-6);
        assert_eq!(d.max_abs(), 2.0);
    }
}

//! Trapezoid footprint of a square voxel in a parallel-beam geometry.
//!
//! The set of rays at angle `theta` passing through a square voxel of
//! side `d` forms, as a function of detector coordinate `u` (distance
//! from the voxel center's projection), a trapezoid: the intersection
//! length profile is the convolution of two box functions of widths
//! `d |cos theta|` and `d |sin theta|`. Its integral equals the voxel
//! area `d^2`, and its peak equals `d / max(|cos|, |sin|)`.
//!
//! A system-matrix entry `A[v][i,j]` is the *mean* intersection length
//! over channel `j`'s width at view `i`, i.e. the trapezoid integrated
//! over the channel interval and divided by the channel pitch. With the
//! image in units of 1/mm this makes `A x` a dimensionless line
//! integral, matching conventional MBIR formulations.

/// Intersection-length profile of a square voxel at one view angle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trapezoid {
    /// Half-width of the support: `d (|cos| + |sin|) / 2`.
    pub half_base: f32,
    /// Half-width of the flat top: `d | |cos| - |sin| | / 2`.
    pub half_plateau: f32,
    /// Peak intersection length: `d / max(|cos|, |sin|)`.
    pub height: f32,
}

impl Trapezoid {
    /// Footprint of a voxel of side `pixel_size` at view angle `theta`.
    pub fn at_angle(theta: f32, pixel_size: f32) -> Self {
        let c = theta.cos().abs();
        let s = theta.sin().abs();
        Self::from_cos_sin(c, s, pixel_size)
    }

    /// Footprint from precomputed `|cos theta|`, `|sin theta|`.
    pub fn from_cos_sin(c: f32, s: f32, pixel_size: f32) -> Self {
        debug_assert!(c >= 0.0 && s >= 0.0);
        let m = c.max(s).max(1e-12);
        Trapezoid {
            half_base: pixel_size * (c + s) / 2.0,
            half_plateau: pixel_size * (c - s).abs() / 2.0,
            height: pixel_size / m,
        }
    }

    /// Total area under the profile; equals `pixel_size^2` exactly.
    pub fn area(&self) -> f32 {
        self.height * (self.half_base + self.half_plateau)
    }

    /// Cumulative integral `F(u) = integral_{-inf}^{u} f`.
    pub fn cumulative(&self, u: f32) -> f32 {
        let hb = self.half_base;
        let hp = self.half_plateau;
        let h = self.height;
        if u <= -hb {
            return 0.0;
        }
        if u >= hb {
            return self.area();
        }
        let ramp = hb - hp; // width of each sloped side (may be ~0)
        if u < -hp {
            // Rising ramp.
            let t = u + hb;
            h * t * t / (2.0 * ramp)
        } else if u <= hp {
            // Plateau.
            h * ramp / 2.0 + h * (u + hp)
        } else {
            // Falling ramp.
            let t = hb - u;
            self.area() - h * t * t / (2.0 * ramp)
        }
    }

    /// Branchless [`Trapezoid::cumulative`]: every branch's exact
    /// expression is computed and the right one selected, so the result
    /// is bitwise-identical to the branchy form (the proptest below
    /// pins this) while the straight-line body lets the system-matrix
    /// lane backend vectorize across channels. A degenerate `ramp == 0`
    /// (axis-aligned view) makes the unselected ramp expressions
    /// inf/NaN, which is fine in Rust — they are discarded by the
    /// selects, exactly as the branchy form never evaluates them:
    /// interior `u` then satisfies `-hp <= u <= hp` (plateau selected),
    /// and exterior `u` hits the 0/area overrides.
    #[inline]
    pub fn cumulative_select(&self, u: f32) -> f32 {
        let hb = self.half_base;
        let hp = self.half_plateau;
        let h = self.height;
        let ramp = hb - hp;
        let tr = u + hb;
        let rising = h * tr * tr / (2.0 * ramp);
        let plateau = h * ramp / 2.0 + h * (u + hp);
        let tf = hb - u;
        let area = self.area();
        let falling = area - h * tf * tf / (2.0 * ramp);
        let mut f = if u < -hp {
            rising
        } else if u <= hp {
            plateau
        } else {
            falling
        };
        if u <= -hb {
            f = 0.0;
        }
        if u >= hb {
            f = area;
        }
        f
    }

    /// Integral of the profile over `[a, b]` (with `a <= b`).
    pub fn integral(&self, a: f32, b: f32) -> f32 {
        debug_assert!(a <= b);
        (self.cumulative(b) - self.cumulative(a)).max(0.0)
    }

    /// Mean intersection length over a channel `[a, b]` of width
    /// `b - a` — this is a system-matrix entry.
    pub fn mean_over(&self, a: f32, b: f32) -> f32 {
        let w = b - a;
        if w <= 0.0 {
            return 0.0;
        }
        self.integral(a, b) / w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::PI;

    #[test]
    fn area_equals_pixel_area() {
        for k in 0..32 {
            let th = k as f32 * PI / 32.0;
            let t = Trapezoid::at_angle(th, 1.5);
            assert!((t.area() - 2.25).abs() < 1e-4, "theta={th}: area={}", t.area());
        }
    }

    #[test]
    fn axis_aligned_is_box() {
        let t = Trapezoid::at_angle(0.0, 1.0);
        assert!((t.half_base - 0.5).abs() < 1e-6);
        assert!((t.half_plateau - 0.5).abs() < 1e-6);
        assert!((t.height - 1.0).abs() < 1e-6);
        // The whole profile integrates to 1 and is flat.
        assert!((t.integral(-0.5, 0.0) - 0.5).abs() < 1e-5);
    }

    #[test]
    fn diagonal_is_triangle() {
        let t = Trapezoid::at_angle(PI / 4.0, 1.0);
        assert!(t.half_plateau.abs() < 1e-6);
        let sqrt2 = std::f32::consts::SQRT_2;
        assert!((t.half_base - sqrt2 / 2.0).abs() < 1e-5);
        assert!((t.height - sqrt2).abs() < 1e-5);
    }

    #[test]
    fn cumulative_is_monotone_and_bounded() {
        let t = Trapezoid::at_angle(0.3, 1.0);
        let mut prev = -1.0f32;
        for i in 0..=200 {
            let u = -1.0 + i as f32 * 0.01;
            let f = t.cumulative(u);
            assert!(f >= prev - 1e-6);
            assert!((0.0..=t.area() + 1e-6).contains(&f));
            prev = f;
        }
        assert_eq!(t.cumulative(-10.0), 0.0);
        assert!((t.cumulative(10.0) - t.area()).abs() < 1e-6);
    }

    #[test]
    fn integral_is_additive() {
        let t = Trapezoid::at_angle(1.1, 2.0);
        let whole = t.integral(-3.0, 3.0);
        let split = t.integral(-3.0, 0.2) + t.integral(0.2, 3.0);
        assert!((whole - split).abs() < 1e-5);
    }

    #[test]
    fn select_form_matches_branchy_at_edges() {
        // Exact boundary hits, including the degenerate axis-aligned
        // trapezoid (ramp == 0, where the unselected ramp expressions
        // are inf/NaN and must be discarded).
        for theta in [0.0f32, PI / 2.0, PI / 4.0, 0.3, 1.2] {
            let t = Trapezoid::at_angle(theta, 1.0);
            for u in [
                -t.half_base,
                -t.half_plateau,
                0.0,
                t.half_plateau,
                t.half_base,
                -t.half_base - 0.1,
                t.half_base + 0.1,
            ] {
                assert_eq!(
                    t.cumulative(u).to_bits(),
                    t.cumulative_select(u).to_bits(),
                    "theta={theta} u={u}"
                );
            }
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1024))]

            #[test]
            fn select_form_is_bitwise_equal(
                theta in 0.0f32..std::f32::consts::PI,
                pixel in 0.1f32..5.0,
                u in -10.0f32..10.0,
            ) {
                let t = Trapezoid::at_angle(theta, pixel);
                prop_assert_eq!(t.cumulative(u).to_bits(), t.cumulative_select(u).to_bits());
            }
        }
    }

    #[test]
    fn symmetric_about_zero() {
        let t = Trapezoid::at_angle(0.7, 1.0);
        for i in 1..20 {
            let u = i as f32 * 0.05;
            let left = t.integral(-u, 0.0);
            let right = t.integral(0.0, u);
            assert!((left - right).abs() < 1e-5);
        }
    }
}

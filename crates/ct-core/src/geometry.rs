//! Parallel-beam CT geometry.
//!
//! An X-ray source and detector array rotate around a stationary
//! object. For each of `num_views` uniformly spaced angles in
//! `[0, 180)` degrees, the detector records `num_channels` line
//! integrals. A voxel centered at `(x, y)` projects onto detector
//! coordinate `t = x cos(theta) + y sin(theta)` — this is what produces
//! the sinusoidal sinogram traces of the paper's Fig. 1b.

use serde::{Deserialize, Serialize};

/// A square, origin-centered reconstruction grid of `nx * ny` voxels
/// ("voxel" here is a 2-D slice pixel; the paper reconstructs slices).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImageGrid {
    /// Number of columns (x direction).
    pub nx: usize,
    /// Number of rows (y direction).
    pub ny: usize,
    /// Voxel side length in millimeters.
    pub pixel_size: f32,
}

impl ImageGrid {
    /// A square grid with `n` voxels per side.
    pub fn square(n: usize, pixel_size: f32) -> Self {
        ImageGrid { nx: n, ny: n, pixel_size }
    }

    /// Total voxel count.
    #[inline]
    pub fn num_voxels(&self) -> usize {
        self.nx * self.ny
    }

    /// x-coordinate (mm) of the center of column `col`.
    #[inline]
    pub fn x_of(&self, col: usize) -> f32 {
        (col as f32 - (self.nx as f32 - 1.0) / 2.0) * self.pixel_size
    }

    /// y-coordinate (mm) of the center of row `row`.
    #[inline]
    pub fn y_of(&self, row: usize) -> f32 {
        (row as f32 - (self.ny as f32 - 1.0) / 2.0) * self.pixel_size
    }

    /// Linear (row-major) index of voxel `(row, col)`.
    #[inline]
    pub fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.ny && col < self.nx);
        row * self.nx + col
    }

    /// Inverse of [`ImageGrid::index`].
    #[inline]
    pub fn row_col(&self, idx: usize) -> (usize, usize) {
        (idx / self.nx, idx % self.nx)
    }

    /// Radius (mm) of the circle inscribing the whole grid (half the
    /// diagonal) — the field of view the detector must cover.
    pub fn bounding_radius(&self) -> f32 {
        let hx = self.nx as f32 * self.pixel_size / 2.0;
        let hy = self.ny as f32 * self.pixel_size / 2.0;
        (hx * hx + hy * hy).sqrt()
    }
}

/// Parallel-beam scanner geometry: view angles, detector channels, and
/// the reconstruction grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of view angles, uniformly spaced over `[0, pi)`.
    pub num_views: usize,
    /// Number of detector channels per view.
    pub num_channels: usize,
    /// Detector channel pitch in millimeters.
    pub channel_spacing: f32,
    /// The reconstruction grid.
    pub grid: ImageGrid,
}

impl Geometry {
    /// Build a geometry, checking that the detector covers the grid's
    /// field of view (otherwise reconstructions are truncated).
    pub fn new(
        num_views: usize,
        num_channels: usize,
        channel_spacing: f32,
        grid: ImageGrid,
    ) -> Self {
        let g = Geometry { num_views, num_channels, channel_spacing, grid };
        assert!(num_views > 0 && num_channels > 0);
        assert!(
            g.detector_half_extent() + channel_spacing >= grid.bounding_radius(),
            "detector ({} ch x {} mm) does not cover the grid FOV (radius {} mm)",
            num_channels,
            channel_spacing,
            grid.bounding_radius()
        );
        g
    }

    /// The paper's evaluation scale: 512x512 image, 720 views over 180
    /// degrees, 1024 channels (ALERT TO3 / Imatron C-300 parameters).
    pub fn paper_scale() -> Self {
        Self::new(720, 1024, 1.0, ImageGrid::square(512, 1.0))
    }

    /// A reduced scale used by the repro harness so full sweeps run in
    /// minutes on a laptop: 256x256, 360 views, 512 channels.
    pub fn harness_scale() -> Self {
        Self::new(360, 512, 1.0, ImageGrid::square(256, 1.0))
    }

    /// A small scale for unit/integration tests: 64x64, 96 views,
    /// 96 channels.
    pub fn test_scale() -> Self {
        Self::new(96, 96, 1.0, ImageGrid::square(64, 1.0))
    }

    /// A tiny scale for property-based tests.
    pub fn tiny_scale() -> Self {
        Self::new(24, 40, 1.0, ImageGrid::square(24, 1.0))
    }

    /// View angle (radians) of view `v`: `v * pi / num_views`.
    #[inline]
    pub fn angle(&self, view: usize) -> f32 {
        view as f32 * std::f32::consts::PI / self.num_views as f32
    }

    /// Detector coordinate (mm) of the center of channel `ch`.
    #[inline]
    pub fn channel_center(&self, ch: usize) -> f32 {
        (ch as f32 - (self.num_channels as f32 - 1.0) / 2.0) * self.channel_spacing
    }

    /// Distance (mm) from detector center to its outer edge.
    pub fn detector_half_extent(&self) -> f32 {
        self.num_channels as f32 * self.channel_spacing / 2.0
    }

    /// Projection of point `(x, y)` at view `v` onto the detector axis.
    #[inline]
    pub fn project_point(&self, view: usize, x: f32, y: f32) -> f32 {
        let th = self.angle(view);
        x * th.cos() + y * th.sin()
    }

    /// Continuous channel coordinate for detector position `t` (mm):
    /// the inverse of [`Geometry::channel_center`].
    #[inline]
    pub fn channel_of(&self, t: f32) -> f32 {
        t / self.channel_spacing + (self.num_channels as f32 - 1.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_coordinates_are_centered() {
        let g = ImageGrid::square(4, 2.0);
        // Centers at -3, -1, 1, 3 for pixel_size = 2.
        assert_eq!(g.x_of(0), -3.0);
        assert_eq!(g.x_of(3), 3.0);
        assert_eq!(g.y_of(1), -1.0);
        assert_eq!(g.x_of(0) + g.x_of(3), 0.0);
    }

    #[test]
    fn grid_index_roundtrip() {
        let g = ImageGrid::square(7, 1.0);
        for row in 0..7 {
            for col in 0..7 {
                assert_eq!(g.row_col(g.index(row, col)), (row, col));
            }
        }
    }

    #[test]
    fn angles_cover_half_circle() {
        let g = Geometry::test_scale();
        assert_eq!(g.angle(0), 0.0);
        let last = g.angle(g.num_views - 1);
        assert!(last < std::f32::consts::PI);
        assert!(last > std::f32::consts::PI * 0.9);
    }

    #[test]
    fn channel_center_inverts() {
        let g = Geometry::test_scale();
        for ch in [0usize, 1, 40, 95] {
            let t = g.channel_center(ch);
            assert!((g.channel_of(t) - ch as f32).abs() < 1e-4);
        }
    }

    #[test]
    fn detector_covers_fov_in_presets() {
        for g in [
            Geometry::paper_scale(),
            Geometry::harness_scale(),
            Geometry::test_scale(),
            Geometry::tiny_scale(),
        ] {
            assert!(g.detector_half_extent() + g.channel_spacing >= g.grid.bounding_radius());
        }
    }

    #[test]
    fn projection_of_center_is_zero() {
        let g = Geometry::test_scale();
        for v in 0..g.num_views {
            assert!(g.project_point(v, 0.0, 0.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn undersized_detector_rejected() {
        Geometry::new(8, 4, 1.0, ImageGrid::square(64, 1.0));
    }
}

//! CT substrate for the PPoPP 2017 GPU-ICD MBIR reproduction.
//!
//! This crate implements everything the MBIR algorithms sit on top of:
//!
//! - [`geometry`]: parallel-beam scanner geometry (views, channels,
//!   image grid), mirroring the paper's Imatron C-300 setup (720 views
//!   over 180 degrees, 1024 channels, 512x512 image at paper scale).
//! - [`footprint`]: the trapezoid footprint of a square voxel projected
//!   on the detector axis, the standard parallel-beam MBIR forward
//!   model, used to compute system-matrix entries.
//! - [`sysmat`]: the sparse system matrix `A` in the per-voxel column
//!   format the paper describes ("all A-matrix elements, across all
//!   views, placed in memory in a contiguous fashion").
//! - [`image`] / [`sinogram`]: dense 2-D containers for the image `x`
//!   and the measurement/error sinograms `y`, `e`.
//! - [`phantom`]: synthetic scenes (Shepp-Logan, water cylinder, and
//!   sparse "baggage-like" scenes substituting for the gated ALERT TO3
//!   security dataset).
//! - [`project`]: forward projection `y = A x` and the transmission
//!   noise model that yields the inverse-variance weight sinogram `w`.
//! - [`fbp`]: filtered back projection, the direct-method baseline the
//!   paper contrasts MBIR against (also used to initialize MBIR).
//! - [`hu`]: Hounsfield-unit conversions and the RMSE-in-HU convergence
//!   metric used throughout the paper's evaluation.

#![warn(missing_docs)]

pub mod fanbeam;
pub mod fbp;
pub mod footprint;
pub mod geometry;
pub mod hu;
pub mod image;
pub mod io;
pub mod metrics;
pub mod phantom;
pub mod project;
pub mod sinogram;
pub mod sysmat;
pub mod volume;

pub use fanbeam::{fan_forward, rebin_to_parallel, FanGeometry};
pub use footprint::Trapezoid;
pub use geometry::{Geometry, ImageGrid};
pub use image::{Image, SharedImage};
pub use phantom::Phantom;
pub use sinogram::Sinogram;
pub use sysmat::{ColumnView, SystemMatrix};
pub use volume::{NeighborClass, Volume};

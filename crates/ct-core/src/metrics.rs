//! Image-quality metrics beyond RMSE.
//!
//! The paper's introduction argues MBIR for *image quality*; these
//! metrics quantify it on the QA phantoms: contrast-to-noise ratio for
//! low-contrast detectability, region statistics, and a gradient-based
//! edge-sharpness score.

use crate::image::Image;

/// Mean and standard deviation of the voxels selected by `mask`.
pub fn region_stats(img: &Image, mask: impl Fn(usize, usize) -> bool) -> (f32, f32) {
    let grid = img.grid();
    let mut values = Vec::new();
    for row in 0..grid.ny {
        for col in 0..grid.nx {
            if mask(row, col) {
                values.push(img.at(row, col));
            }
        }
    }
    assert!(!values.is_empty(), "empty region");
    let n = values.len() as f64;
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = values.iter().map(|&v| (v as f64 - mean) * (v as f64 - mean)).sum::<f64>() / n;
    (mean as f32, var.sqrt() as f32)
}

/// Contrast-to-noise ratio between a disc (center `(crow, ccol)`,
/// radius in voxels) and a same-size background annulus around it.
pub fn cnr_disc(img: &Image, crow: usize, ccol: usize, radius: f32) -> f32 {
    let inside = |row: usize, col: usize| -> bool {
        let dr = row as f32 - crow as f32;
        let dc = col as f32 - ccol as f32;
        (dr * dr + dc * dc).sqrt() <= radius
    };
    let annulus = |row: usize, col: usize| -> bool {
        let dr = row as f32 - crow as f32;
        let dc = col as f32 - ccol as f32;
        let d = (dr * dr + dc * dc).sqrt();
        d > radius * 1.5 && d <= radius * 2.5
    };
    let (m_in, s_in) = region_stats(img, inside);
    let (m_bg, s_bg) = region_stats(img, annulus);
    let noise = ((s_in * s_in + s_bg * s_bg) / 2.0).sqrt().max(1e-12);
    (m_in - m_bg).abs() / noise
}

/// Mean gradient magnitude (central differences) — tracks edge
/// sharpness; over-regularized reconstructions score lower on edgy
/// phantoms.
pub fn mean_gradient(img: &Image) -> f32 {
    let grid = img.grid();
    let mut acc = 0.0f64;
    let mut count = 0usize;
    for row in 1..grid.ny - 1 {
        for col in 1..grid.nx - 1 {
            let gx = (img.at(row, col + 1) - img.at(row, col - 1)) / 2.0;
            let gy = (img.at(row + 1, col) - img.at(row - 1, col)) / 2.0;
            acc += ((gx * gx + gy * gy) as f64).sqrt();
            count += 1;
        }
    }
    (acc / count as f64) as f32
}

/// Structural similarity (global, single-window SSIM) between two
/// images — a luminance/contrast/structure product in `[-1, 1]`.
pub fn ssim_global(a: &Image, b: &Image) -> f32 {
    assert_eq!(a.grid(), b.grid());
    let n = a.data().len() as f64;
    let ma = a.data().iter().map(|&v| v as f64).sum::<f64>() / n;
    let mb = b.data().iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut va = 0.0f64;
    let mut vb = 0.0f64;
    let mut cov = 0.0f64;
    for (&x, &y) in a.data().iter().zip(b.data()) {
        va += (x as f64 - ma) * (x as f64 - ma);
        vb += (y as f64 - mb) * (y as f64 - mb);
        cov += (x as f64 - ma) * (y as f64 - mb);
    }
    va /= n;
    vb /= n;
    cov /= n;
    // Stabilizers scaled to the attenuation range.
    let c1 = (0.01f64 * 0.04).powi(2);
    let c2 = (0.03f64 * 0.04).powi(2);
    let s = ((2.0 * ma * mb + c1) * (2.0 * cov + c2)) / ((ma * ma + mb * mb + c1) * (va + vb + c2));
    s as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ImageGrid;
    use crate::phantom::{Phantom, Shape, MU_WATER};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid() -> ImageGrid {
        ImageGrid::square(64, 1.0)
    }

    fn disc_phantom() -> Image {
        let mut p = Phantom::named("disc");
        p.push(Shape::Ellipse { cx: 0.0, cy: 0.0, a: 0.25, b: 0.25, phi: 0.0, value: MU_WATER });
        p.render(grid(), 1)
    }

    #[test]
    fn region_stats_flat() {
        let img = disc_phantom();
        let (mean, std) = region_stats(&img, |r, c| {
            let d = ((r as f32 - 31.5).powi(2) + (c as f32 - 31.5).powi(2)).sqrt();
            d < 4.0
        });
        assert!((mean - MU_WATER).abs() < 1e-6);
        assert_eq!(std, 0.0);
    }

    #[test]
    fn cnr_infinite_for_noiseless_disc_vs_air() {
        // Disc radius: 0.25 normalized on a 64-grid = 8 voxels, so the
        // annulus (1.5r..2.5r) sits fully in air.
        let img = disc_phantom();
        let cnr = cnr_disc(&img, 32, 32, 6.0);
        assert!(cnr > 100.0, "cnr {cnr}");
    }

    #[test]
    fn cnr_falls_with_noise() {
        let clean = disc_phantom();
        let mut noisy = clean.clone();
        let mut rng = StdRng::seed_from_u64(1);
        for v in noisy.data_mut() {
            *v += rng.random_range(-0.002f32..0.002);
        }
        assert!(cnr_disc(&noisy, 32, 32, 6.0) < cnr_disc(&clean, 32, 32, 6.0));
    }

    #[test]
    fn gradient_tracks_blur() {
        let sharp = disc_phantom();
        // 3x3 box blur.
        let g = sharp.grid();
        let mut blurred = Image::zeros(g);
        for row in 1..g.ny - 1 {
            for col in 1..g.nx - 1 {
                let mut acc = 0.0;
                for dr in -1i32..=1 {
                    for dc in -1i32..=1 {
                        acc += sharp.at((row as i32 + dr) as usize, (col as i32 + dc) as usize);
                    }
                }
                *blurred.at_mut(row, col) = acc / 9.0;
            }
        }
        assert!(mean_gradient(&blurred) < mean_gradient(&sharp));
    }

    #[test]
    fn ssim_is_one_for_identical_and_lower_for_noise() {
        let img = disc_phantom();
        assert!((ssim_global(&img, &img) - 1.0).abs() < 1e-6);
        let mut noisy = img.clone();
        let mut rng = StdRng::seed_from_u64(2);
        for v in noisy.data_mut() {
            *v += rng.random_range(-0.01f32..0.01);
        }
        let s = ssim_global(&img, &noisy);
        assert!(s < 0.999, "ssim {s}");
        assert!(s > -1.0);
    }
}

//! Synthetic phantoms.
//!
//! The paper's evaluation uses 3200 baggage scans from the DHS ALERT
//! Task Order 3 dataset, which is access-gated. We substitute synthetic
//! scenes that preserve the properties the algorithms are sensitive to:
//! a mostly-air image (high zero-skipping rate), compact objects of
//! varying density, and the standard parallel-beam acquisition. Scenes
//! are built from rotated ellipses and rectangles in a normalized
//! `[-1, 1]` coordinate frame over the grid's half-extent.

use crate::geometry::ImageGrid;
use crate::image::Image;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Linear attenuation of water (1/mm) used for Hounsfield scaling.
pub const MU_WATER: f32 = 0.02;

/// A primitive shape contributing additively to the phantom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// Rotated ellipse.
    Ellipse {
        /// Center x (normalized).
        cx: f32,
        /// Center y (normalized).
        cy: f32,
        /// Semi-axis along the unrotated x direction.
        a: f32,
        /// Semi-axis along the unrotated y direction.
        b: f32,
        /// Rotation, radians.
        phi: f32,
        /// Additive attenuation contribution (1/mm).
        value: f32,
    },
    /// Rotated rectangle.
    Rect {
        /// Center x (normalized).
        cx: f32,
        /// Center y (normalized).
        cy: f32,
        /// Half-extent along the unrotated x direction.
        hx: f32,
        /// Half-extent along the unrotated y direction.
        hy: f32,
        /// Rotation, radians.
        phi: f32,
        /// Additive attenuation contribution (1/mm).
        value: f32,
    },
}

impl Shape {
    /// Additive contribution of this shape at normalized point `(x, y)`.
    fn value_at(&self, x: f32, y: f32) -> f32 {
        match *self {
            Shape::Ellipse { cx, cy, a, b, phi, value } => {
                let (dx, dy) = rotate(x - cx, y - cy, -phi);
                let q = (dx / a).powi(2) + (dy / b).powi(2);
                if q <= 1.0 {
                    value
                } else {
                    0.0
                }
            }
            Shape::Rect { cx, cy, hx, hy, phi, value } => {
                let (dx, dy) = rotate(x - cx, y - cy, -phi);
                if dx.abs() <= hx && dy.abs() <= hy {
                    value
                } else {
                    0.0
                }
            }
        }
    }
}

#[inline]
fn rotate(x: f32, y: f32, phi: f32) -> (f32, f32) {
    let (s, c) = phi.sin_cos();
    (x * c - y * s, x * s + y * c)
}

/// A scene of additive shapes in normalized coordinates.
#[derive(Debug, Clone, Default)]
pub struct Phantom {
    shapes: Vec<Shape>,
    name: String,
}

impl Phantom {
    /// Empty scene with a display name.
    pub fn named(name: impl Into<String>) -> Self {
        Phantom { shapes: Vec::new(), name: name.into() }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shapes in the scene.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Add a shape.
    pub fn push(&mut self, s: Shape) -> &mut Self {
        self.shapes.push(s);
        self
    }

    /// Render onto `grid` with `ss * ss` supersampling per voxel
    /// (`ss = 1` samples voxel centers; `ss = 2` antialiases edges).
    /// Negative accumulated values are clipped to zero (attenuation is
    /// nonnegative).
    pub fn render(&self, grid: ImageGrid, ss: usize) -> Image {
        assert!(ss >= 1);
        let mut img = Image::zeros(grid);
        // Normalize each axis by its own half-extent so shapes keep
        // their aspect on non-square grids.
        let half_x = grid.nx as f32 * grid.pixel_size / 2.0;
        let half_y = grid.ny as f32 * grid.pixel_size / 2.0;
        let sub = grid.pixel_size / ss as f32;
        for row in 0..grid.ny {
            for col in 0..grid.nx {
                let mut acc = 0.0f32;
                for sy in 0..ss {
                    for sx in 0..ss {
                        let x = (grid.x_of(col) - grid.pixel_size / 2.0 + (sx as f32 + 0.5) * sub)
                            / half_x;
                        let y = (grid.y_of(row) - grid.pixel_size / 2.0 + (sy as f32 + 0.5) * sub)
                            / half_y;
                        let mut v = 0.0f32;
                        for s in &self.shapes {
                            v += s.value_at(x, y);
                        }
                        acc += v.max(0.0);
                    }
                }
                img.set(grid.index(row, col), acc / (ss * ss) as f32);
            }
        }
        img
    }

    /// The (modified) Shepp-Logan head phantom, scaled so the skull has
    /// roughly twice water attenuation.
    pub fn shepp_logan() -> Self {
        // (value, a, b, cx, cy, phi_degrees), modified contrast.
        const E: [(f32, f32, f32, f32, f32, f32); 10] = [
            (1.0, 0.69, 0.92, 0.0, 0.0, 0.0),
            (-0.8, 0.6624, 0.874, 0.0, -0.0184, 0.0),
            (-0.2, 0.11, 0.31, 0.22, 0.0, -18.0),
            (-0.2, 0.16, 0.41, -0.22, 0.0, 18.0),
            (0.1, 0.21, 0.25, 0.0, 0.35, 0.0),
            (0.1, 0.046, 0.046, 0.0, 0.1, 0.0),
            (0.1, 0.046, 0.046, 0.0, -0.1, 0.0),
            (0.1, 0.046, 0.023, -0.08, -0.605, 0.0),
            (0.1, 0.023, 0.023, 0.0, -0.606, 0.0),
            (0.1, 0.023, 0.046, 0.06, -0.605, 0.0),
        ];
        let mut p = Phantom::named("shepp-logan");
        for &(v, a, b, cx, cy, deg) in &E {
            p.push(Shape::Ellipse {
                cx,
                cy,
                a,
                b,
                phi: deg.to_radians(),
                value: v * 2.0 * MU_WATER,
            });
        }
        p
    }

    /// A centered water cylinder of the given radius fraction.
    pub fn water_cylinder(radius: f32) -> Self {
        let mut p = Phantom::named("water-cylinder");
        p.push(Shape::Ellipse {
            cx: 0.0,
            cy: 0.0,
            a: radius,
            b: radius,
            phi: 0.0,
            value: MU_WATER,
        });
        p
    }

    /// A random sparse "baggage" scene: a thin-walled rectangular case
    /// containing a few objects of assorted density, surrounded by air.
    /// This is the substitution for an ALERT TO3 security scan; seeds
    /// index the suite deterministically.
    pub fn baggage(seed: u64) -> Self {
        let mut rng =
            StdRng::seed_from_u64(0x9e3779b97f4a7c15 ^ seed.wrapping_mul(0x2545f4914f6cdd1d));
        let mut p = Phantom::named(format!("baggage-{seed}"));

        // Case shell: outer rect minus inner rect (negative value on a
        // positive one leaves a thin dense wall).
        let hw = rng.random_range(0.45..0.68);
        let hh = rng.random_range(0.35..0.6);
        let phi = rng.random_range(-0.25..0.25f32);
        let wall = 0.035;
        let shell = rng.random_range(1.2f32..2.2) * MU_WATER;
        p.push(Shape::Rect { cx: 0.0, cy: 0.0, hx: hw, hy: hh, phi, value: shell });
        p.push(Shape::Rect { cx: 0.0, cy: 0.0, hx: hw - wall, hy: hh - wall, phi, value: -shell });

        // Contents: 3..=9 objects inside the case.
        let n = rng.random_range(3..=9);
        for _ in 0..n {
            let cx = rng.random_range(-(hw - 0.12)..(hw - 0.12));
            let cy = rng.random_range(-(hh - 0.12)..(hh - 0.12));
            let (cx, cy) = rotate(cx, cy, phi);
            let value = match rng.random_range(0..4) {
                0 => rng.random_range(0.2f32..0.6) * MU_WATER, // clothing/plastic
                1 => rng.random_range(0.8f32..1.3) * MU_WATER, // liquids
                2 => rng.random_range(1.4f32..2.5) * MU_WATER, // dense organics
                _ => rng.random_range(3.0f32..6.0) * MU_WATER, // metal-like
            };
            let rot = rng.random_range(0.0..std::f32::consts::PI);
            if rng.random_bool(0.55) {
                let a = rng.random_range(0.04..0.2);
                let b = rng.random_range(0.04..0.2);
                p.push(Shape::Ellipse { cx, cy, a, b, phi: rot, value });
            } else {
                let hx = rng.random_range(0.03..0.18);
                let hy = rng.random_range(0.03..0.18);
                p.push(Shape::Rect { cx, cy, hx, hy, phi: rot, value });
            }
        }
        p
    }

    /// A deterministic suite of `n` baggage phantoms (substitute for
    /// the paper's 3200-case test set).
    pub fn baggage_suite(n: usize) -> Vec<Phantom> {
        (0..n as u64).map(Phantom::baggage).collect()
    }

    /// A resolution phantom: vertical bar groups of decreasing pitch
    /// inside a water disc (QA for edge preservation / blur).
    pub fn resolution_bars() -> Self {
        let mut p = Phantom::named("resolution-bars");
        p.push(Shape::Ellipse { cx: 0.0, cy: 0.0, a: 0.85, b: 0.85, phi: 0.0, value: MU_WATER });
        // Four groups of 3 bars with shrinking width and spacing.
        let mut x = -0.6f32;
        for (g, &w) in [0.10f32, 0.06, 0.04, 0.025].iter().enumerate() {
            for k in 0..3 {
                p.push(Shape::Rect {
                    cx: x + k as f32 * 2.0 * w,
                    cy: -0.1 + 0.05 * g as f32,
                    hx: w / 2.0,
                    hy: 0.3,
                    phi: 0.0,
                    value: MU_WATER, // bars at 2x water
                });
            }
            x += 6.0 * w + 0.12;
        }
        p
    }

    /// A low-contrast detectability phantom: discs of decreasing
    /// contrast (200, 100, 50, 20 HU) in a water disc.
    pub fn contrast_disks() -> Self {
        let mut p = Phantom::named("contrast-disks");
        p.push(Shape::Ellipse { cx: 0.0, cy: 0.0, a: 0.85, b: 0.85, phi: 0.0, value: MU_WATER });
        for (k, &hu) in [200.0f32, 100.0, 50.0, 20.0].iter().enumerate() {
            let angle = k as f32 * std::f32::consts::FRAC_PI_2 + 0.4;
            p.push(Shape::Ellipse {
                cx: 0.45 * angle.cos(),
                cy: 0.45 * angle.sin(),
                a: 0.12,
                b: 0.12,
                phi: 0.0,
                value: MU_WATER * hu / 1000.0,
            });
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ImageGrid {
        ImageGrid::square(64, 1.0)
    }

    #[test]
    fn shepp_logan_renders_nonempty() {
        let img = Phantom::shepp_logan().render(grid(), 1);
        assert!(img.max_abs() > 0.0);
        // Head is surrounded by air.
        assert_eq!(img.at(0, 0), 0.0);
        assert_eq!(img.at(63, 63), 0.0);
        // Interior (brain) is less dense than skull.
        let center = img.at(32, 32);
        assert!(center > 0.0 && center < 2.0 * MU_WATER);
    }

    #[test]
    fn water_cylinder_value() {
        let img = Phantom::water_cylinder(0.5).render(grid(), 1);
        assert!((img.at(32, 32) - MU_WATER).abs() < 1e-6);
        assert_eq!(img.at(0, 32), 0.0);
    }

    #[test]
    fn baggage_is_sparse_and_deterministic() {
        let a = Phantom::baggage(7).render(grid(), 1);
        let b = Phantom::baggage(7).render(grid(), 1);
        assert_eq!(a, b);
        assert!(a.zero_fraction() > 0.3, "zero fraction {}", a.zero_fraction());
        assert!(a.max_abs() > MU_WATER);
    }

    #[test]
    fn baggage_suite_varies_by_seed() {
        let suite = Phantom::baggage_suite(4);
        let imgs: Vec<_> = suite.iter().map(|p| p.render(grid(), 1)).collect();
        assert!(imgs[0] != imgs[1]);
        assert!(imgs[2] != imgs[3]);
    }

    #[test]
    fn values_are_nonnegative_after_clip() {
        for seed in 0..8 {
            let img = Phantom::baggage(seed).render(grid(), 1);
            assert!(img.data().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn supersampling_smooths_edges() {
        let p = Phantom::water_cylinder(0.5);
        let hard = p.render(grid(), 1);
        let soft = p.render(grid(), 4);
        // Same interior, but the supersampled edge has intermediate values.
        assert_eq!(hard.at(32, 32), soft.at(32, 32));
        let partial = soft.data().iter().filter(|&&v| v > 0.0 && v < MU_WATER).count();
        assert!(partial > 0);
    }

    #[test]
    fn resolution_bars_have_decreasing_pitch() {
        let img = Phantom::resolution_bars().render(ImageGrid::square(128, 1.0), 2);
        // Bars exceed the water background somewhere.
        assert!(img.max_abs() > 1.5 * MU_WATER);
        // Scene is inside the disc: corners are air.
        assert_eq!(img.at(0, 0), 0.0);
    }

    #[test]
    fn contrast_disks_span_contrasts() {
        let img = Phantom::contrast_disks().render(ImageGrid::square(128, 1.0), 2);
        // Values present: water (0.02) plus the four bumps up to +200 HU.
        let max = img.data().iter().cloned().fold(0.0f32, f32::max);
        assert!(max > MU_WATER * 1.15 && max < MU_WATER * 1.25, "max {max}");
        assert_eq!(img.at(0, 0), 0.0);
    }

    #[test]
    fn non_square_grid_preserves_shape_coverage() {
        // A centered disc of normalized radius 0.5 covers ~pi/16 of
        // any grid's area when each axis normalizes by its own extent.
        let p = Phantom::water_cylinder(0.5);
        let sq = p.render(ImageGrid::square(40, 1.0), 1);
        let wide = p.render(ImageGrid { nx: 80, ny: 40, pixel_size: 1.0 }, 1);
        let frac = |img: &Image| {
            img.data().iter().filter(|&&v| v > 0.0).count() as f32 / img.data().len() as f32
        };
        assert!((frac(&sq) - frac(&wide)).abs() < 0.03, "{} vs {}", frac(&sq), frac(&wide));
    }

    #[test]
    fn rotated_rect_membership() {
        let s = Shape::Rect {
            cx: 0.0,
            cy: 0.0,
            hx: 0.5,
            hy: 0.1,
            phi: std::f32::consts::FRAC_PI_2,
            value: 1.0,
        };
        // After a 90-degree rotation the long axis is vertical.
        assert_eq!(s.value_at(0.0, 0.4), 1.0);
        assert_eq!(s.value_at(0.4, 0.0), 0.0);
    }
}

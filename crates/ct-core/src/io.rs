//! Minimal image/sinogram persistence: binary PGM for quick visual
//! inspection and CSV for numeric round-trips. No external format
//! dependencies — the repro harness and CLI write artifacts a human
//! can open anywhere.

use crate::geometry::ImageGrid;
use crate::image::Image;
use crate::sinogram::Sinogram;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Refuse PGM payloads beyond this many pixels — far above any grid
/// this project reconstructs, small enough that a hostile header
/// cannot make `read_pgm` allocate gigabytes.
const MAX_PGM_PIXELS: u64 = 1 << 28;

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Write an image as a binary 8-bit PGM, windowed to `[lo, hi]`
/// (values clamp). Use [`crate::hu`] conversions to pick clinically
/// meaningful windows. A non-finite pixel is an error, not a silently
/// windowed artifact: NaN would otherwise quantize to an arbitrary
/// byte and round-trip as a plausible-looking value.
pub fn write_pgm(path: &Path, img: &Image, lo: f32, hi: f32) -> std::io::Result<()> {
    assert!(hi > lo, "window must be nonempty");
    let grid = img.grid();
    if let Some(pos) = img.data().iter().position(|v| !v.is_finite()) {
        let (row, col) = (pos / grid.nx, pos % grid.nx);
        return Err(invalid(format!(
            "non-finite pixel {} at ({row}, {col}) cannot be windowed to PGM",
            img.data()[pos]
        )));
    }
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "P5")?;
    writeln!(w, "{} {}", grid.nx, grid.ny)?;
    writeln!(w, "255")?;
    let scale = 255.0 / (hi - lo);
    let bytes: Vec<u8> =
        img.data().iter().map(|&v| ((v - lo) * scale).clamp(0.0, 255.0) as u8).collect();
    w.write_all(&bytes)?;
    w.flush()
}

/// Read a binary 8-bit PGM back into an image on `[lo, hi]`.
///
/// Hardened against hostile headers: dimensions multiply through a
/// checked path capped at [`MAX_PGM_PIXELS`], zero-sized grids and any
/// maxval other than 255 (the only depth [`write_pgm`] produces) are
/// [`std::io::ErrorKind::InvalidData`] — never a panic or an OOM.
pub fn read_pgm(path: &Path, pixel_size: f32, lo: f32, hi: f32) -> std::io::Result<Image> {
    let f = std::fs::File::open(path)?;
    read_pgm_from(&mut BufReader::new(f), pixel_size, lo, hi)
}

/// [`read_pgm`] over any reader — the path-less entrypoint the fuzz
/// harness drives with in-memory bytes.
pub fn read_pgm_from<R: BufRead>(
    r: &mut R,
    pixel_size: f32,
    lo: f32,
    hi: f32,
) -> std::io::Result<Image> {
    let mut header = String::new();
    // Magic, dimensions, maxval (no comment support — we wrote it).
    r.read_line(&mut header)?;
    if header.trim() != "P5" {
        return Err(invalid("not a binary PGM"));
    }
    let mut dims = String::new();
    r.read_line(&mut dims)?;
    let mut it = dims.split_whitespace();
    let nx: u64 = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| invalid("bad dims"))?;
    let ny: u64 = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| invalid("bad dims"))?;
    // A dims line with anything after `nx ny` was written by some
    // other tool (or an attacker): refuse it rather than guessing
    // which two tokens were meant.
    if let Some(extra) = it.next() {
        return Err(invalid(format!("trailing token `{extra}` after PGM dimensions")));
    }
    let pixels = match nx.checked_mul(ny) {
        Some(n) if n > 0 && n <= MAX_PGM_PIXELS => n as usize,
        _ => return Err(invalid(format!("implausible PGM dimensions {nx} x {ny}"))),
    };
    let mut maxval = String::new();
    r.read_line(&mut maxval)?;
    if maxval.trim() != "255" {
        return Err(invalid(format!(
            "unsupported maxval `{}` (only 8-bit PGMs with maxval 255)",
            maxval.trim()
        )));
    }
    let mut bytes = vec![0u8; pixels];
    r.read_exact(&mut bytes)?;
    let scale = (hi - lo) / 255.0;
    let data = bytes.iter().map(|&b| lo + b as f32 * scale).collect();
    Ok(Image::from_vec(ImageGrid { nx: nx as usize, ny: ny as usize, pixel_size }, data))
}

/// Write a sinogram as CSV (one row per view), full precision.
pub fn write_sinogram_csv(path: &Path, s: &Sinogram) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    for v in 0..s.num_views() {
        let row: Vec<String> = s.view(v).iter().map(|x| format!("{x}")).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()
}

/// Read a sinogram from CSV.
///
/// Non-finite tokens (`NaN`, `inf`, `-inf` — which `f32::from_str`
/// happily accepts) are rejected *here*, with the line and column,
/// mirroring [`write_pgm`]'s write-side refusal: letting them in would
/// only fail hundreds of iterations later when the reconstruction
/// tries to window, with no hint of which input cell was poisoned.
pub fn read_sinogram_csv(path: &Path) -> std::io::Result<Sinogram> {
    let f = std::fs::File::open(path)?;
    read_sinogram_csv_from(BufReader::new(f))
}

/// [`read_sinogram_csv`] over any reader — the path-less entrypoint
/// the fuzz harness drives with in-memory bytes.
pub fn read_sinogram_csv_from<R: BufRead>(r: R) -> std::io::Result<Sinogram> {
    let mut data = Vec::new();
    let mut channels = None;
    let mut views = 0usize;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for (col, token) in line.split(',').enumerate() {
            let token = token.trim();
            let x: f32 = token.parse().map_err(|_| {
                invalid(format!(
                    "line {}, column {}: cannot parse `{token}` as a number",
                    lineno + 1,
                    col + 1
                ))
            })?;
            if !x.is_finite() {
                return Err(invalid(format!(
                    "line {}, column {}: non-finite value `{token}`",
                    lineno + 1,
                    col + 1
                )));
            }
            row.push(x);
        }
        match channels {
            None => channels = Some(row.len()),
            Some(c) if c != row.len() => return Err(invalid("ragged sinogram rows")),
            _ => {}
        }
        views += 1;
        data.extend(row);
    }
    let channels = channels.ok_or_else(|| invalid("empty sinogram"))?;
    Ok(Sinogram::from_vec(views, channels, data))
}

/// Write an image as CSV, full precision (lossless round-trips, unlike
/// the 8-bit PGM window).
pub fn write_image_csv(path: &Path, img: &Image) -> std::io::Result<()> {
    let grid = img.grid();
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    for row in 0..grid.ny {
        let cells: Vec<String> = (0..grid.nx).map(|col| format!("{}", img.at(row, col))).collect();
        writeln!(w, "{}", cells.join(","))?;
    }
    w.flush()
}

/// Read an image from CSV.
pub fn read_image_csv(path: &Path, pixel_size: f32) -> std::io::Result<Image> {
    let s = read_sinogram_csv(path)?;
    if s.num_views() != s.num_channels() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "image CSV must be square",
        ));
    }
    let n = s.num_views();
    Ok(Image::from_vec(ImageGrid { nx: n, ny: n, pixel_size }, s.data().to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use crate::phantom::Phantom;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mbir-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn pgm_roundtrip_within_quantization() {
        let g = Geometry::tiny_scale();
        let img = Phantom::shepp_logan().render(g.grid, 1);
        let path = tmp("sl.pgm");
        let (lo, hi) = (0.0, 0.05);
        write_pgm(&path, &img, lo, hi).unwrap();
        let back = read_pgm(&path, g.grid.pixel_size, lo, hi).unwrap();
        assert_eq!(back.grid().nx, g.grid.nx);
        let step = (hi - lo) / 255.0;
        for (a, b) in img.data().iter().zip(back.data()) {
            assert!((a.clamp(lo, hi) - b).abs() <= step, "{a} vs {b}");
        }
    }

    #[test]
    fn sinogram_csv_roundtrip_exact() {
        let g = Geometry::tiny_scale();
        let mut s = Sinogram::zeros(&g);
        for (i, v) in s.data_mut().iter_mut().enumerate() {
            *v = (i as f32).sin();
        }
        let path = tmp("sino.csv");
        write_sinogram_csv(&path, &s).unwrap();
        let back = read_sinogram_csv(&path).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn image_csv_roundtrip_exact() {
        let g = Geometry::tiny_scale();
        let img = Phantom::baggage(3).render(g.grid, 1);
        let path = tmp("img.csv");
        write_image_csv(&path, &img).unwrap();
        let back = read_image_csv(&path, g.grid.pixel_size).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn bad_inputs_error() {
        let path = tmp("garbage.pgm");
        std::fs::write(&path, b"P6\n1 1\n255\nxxx").unwrap();
        assert!(read_pgm(&path, 1.0, 0.0, 1.0).is_err());
        let path = tmp("ragged.csv");
        std::fs::write(&path, "1,2,3\n1,2\n").unwrap();
        assert!(read_sinogram_csv(&path).is_err());
        let path = tmp("empty.csv");
        std::fs::write(&path, "").unwrap();
        assert!(read_sinogram_csv(&path).is_err());
    }

    #[test]
    fn hostile_pgm_headers_error_without_allocating() {
        let cases: &[(&str, &[u8])] = &[
            // nx * ny overflows usize multiplication on 64-bit too.
            ("overflow.pgm", b"P5\n18446744073709551615 2\n255\n"),
            // Huge-but-representable product must hit the cap, not OOM.
            ("huge.pgm", b"P5\n1000000000 1000000000\n255\n"),
            ("zero.pgm", b"P5\n0 5\n255\n"),
            ("maxval16.pgm", b"P5\n2 2\n16\n\x00\x01\x02\x03"),
            ("maxval65535.pgm", b"P5\n2 2\n65535\n\x00\x01\x02\x03"),
            ("nonnumeric.pgm", b"P5\nab cd\n255\n"),
            // Trailing tokens after `nx ny` were silently dropped
            // before the hardening pass; now they are refused.
            ("trailing-dims.pgm", b"P5\n2 2 999\n255\n\x00\x01\x02\x03"),
            ("quad-dims.pgm", b"P5\n2 2 2 2\n255\n\x00\x01\x02\x03"),
        ];
        for (name, bytes) in cases {
            let path = tmp(name);
            std::fs::write(&path, bytes).unwrap();
            let err = read_pgm(&path, 1.0, 0.0, 1.0).expect_err(name);
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{name}");
        }
    }

    #[test]
    fn non_finite_csv_tokens_are_rejected_at_parse_time() {
        // Regression: `"NaN"`/`"inf"` parse successfully as f32, so
        // they used to flow straight into the reconstruction and only
        // explode much later at write_pgm's non-finite refusal. They
        // must be a located error at ingest.
        let cases: &[(&str, &str, &str)] = &[
            ("nan.csv", "1,2\nNaN,4\n", "line 2, column 1"),
            ("inf.csv", "1,inf\n3,4\n", "line 1, column 2"),
            ("neginf.csv", "1,2\n3,-inf\n", "line 2, column 2"),
            ("infinity.csv", "Infinity,2\n", "line 1, column 1"),
            // The overflow spelling: a finite-looking literal that
            // f32::from_str rounds to infinity.
            ("overflow.csv", "1e40,2\n", "line 1, column 1"),
        ];
        for (name, text, where_) in cases {
            let path = tmp(name);
            std::fs::write(&path, text).unwrap();
            let err = read_sinogram_csv(&path).expect_err(name);
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{name}");
            assert!(err.to_string().contains(where_), "{name}: {err} lacks `{where_}`");
        }
        // The blank-line skip must not desynchronize the reported line.
        let path = tmp("blank-then-nan.csv");
        std::fs::write(&path, "1,2\n\nNaN,4\n").unwrap();
        let err = read_sinogram_csv(&path).unwrap_err();
        assert!(err.to_string().contains("line 3, column 1"), "{err}");
    }

    #[test]
    fn non_finite_pixels_refuse_to_window() {
        let g = Geometry::tiny_scale();
        let mut img = Phantom::shepp_logan().render(g.grid, 1);
        img.data_mut()[3] = f32::NAN;
        let path = tmp("nan.pgm");
        let err = write_pgm(&path, &img, 0.0, 1.0).expect_err("NaN must not serialize");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("(0, 3)"), "{err}");

        img.data_mut()[3] = f32::INFINITY;
        assert!(write_pgm(&path, &img, 0.0, 1.0).is_err());
    }
}

//! Property-based tests for priors and the voxel update.

use mbir::prior::{Prior, QggmrfPrior, QuadraticPrior};
use proptest::prelude::*;

fn qg(sigma: f32) -> QggmrfPrior {
    QggmrfPrior::standard(sigma)
}

proptest! {
    /// rho is even, nonnegative, zero at zero, for any sigma.
    #[test]
    fn rho_is_even_nonneg(u in -1.0f32..1.0, sigma in 0.0005f32..0.1) {
        let p = qg(sigma);
        prop_assert!(p.rho(u) >= 0.0);
        prop_assert!((p.rho(u) - p.rho(-u)).abs() < 1e-6 + p.rho(u) * 1e-4);
        prop_assert_eq!(p.rho(0.0), 0.0);
    }

    /// The surrogate curvature is positive and finite everywhere.
    #[test]
    fn btilde_positive_finite(u in -2.0f32..2.0, sigma in 0.0005f32..0.1) {
        let p = qg(sigma);
        let b = p.btilde(u);
        prop_assert!(b.is_finite());
        prop_assert!(b > 0.0);
    }

    /// btilde decreases with |u| (edge preservation: large differences
    /// are penalized at a lower marginal rate).
    #[test]
    fn btilde_decreases_with_distance(u in 0.001f32..1.0, sigma in 0.001f32..0.05) {
        let p = qg(sigma);
        prop_assert!(p.btilde(u * 2.0) <= p.btilde(u) * 1.0001);
    }

    /// The symmetric-bound surrogate
    /// `q(v) = btilde(u0) (v^2 - u0^2) + rho(u0)` touches `rho` at the
    /// expansion point and majorizes it everywhere else (the MM
    /// property the voxel update relies on).
    #[test]
    fn surrogate_majorizes(
        u0 in 0.0005f32..0.5,
        v in -1.0f32..1.0,
        sigma in 0.001f32..0.05,
    ) {
        let p = qg(sigma);
        let b = p.btilde(u0);
        let q = |x: f32| b * (x * x - u0 * u0) + p.rho(u0);
        // Touch at the expansion point.
        prop_assert!((q(u0) - p.rho(u0)).abs() <= p.rho(u0).abs() * 1e-5 + 1e-7);
        // Majorize everywhere (small tolerance for f32 rounding).
        let slack = 1e-5 * (1.0 + p.rho(v).abs());
        prop_assert!(q(v) + slack >= p.rho(v), "q({v}) = {} < rho = {}", q(v), p.rho(v));
    }

    /// The step never increases the 1-D objective, for random thetas
    /// and neighbourhoods (the MM guarantee, both priors).
    #[test]
    fn step_decreases_objective(
        v in 0.0f32..0.05,
        theta1 in -50.0f32..50.0,
        theta2 in 1.0f32..5000.0,
        n1 in 0.0f32..0.05,
        n2 in 0.0f32..0.05,
        quad in prop::bool::ANY,
    ) {
        let neigh = [(n1, 0.1464f32), (n2, 0.1036), (0.0, 0.1464)];
        let check = |p: &dyn Prior| {
            let g = |d: f32| -> f32 {
                theta1 * d + theta2 * d * d / 2.0
                    + neigh.iter().map(|&(xn, b)| b * p.rho(v + d - xn)).sum::<f32>()
            };
            let d = p.step(v, theta1, theta2, &mut neigh.iter().copied());
            let before = g(0.0);
            let after = g(d);
            after <= before + before.abs().max(1e-3) * 1e-4
        };
        let ok = if quad { check(&QuadraticPrior { sigma: 0.01 }) } else { check(&qg(0.002)) };
        prop_assert!(ok, "step increased the 1-D objective");
    }

    /// The quadratic step is the exact stationary point.
    #[test]
    fn quadratic_step_stationary(
        v in -0.05f32..0.05,
        theta1 in -20.0f32..20.0,
        theta2 in 10.0f32..2000.0,
        n1 in -0.05f32..0.05,
    ) {
        let p = QuadraticPrior { sigma: 0.01 };
        let neigh = [(n1, 0.25f32)];
        let d = p.step(v, theta1, theta2, &mut neigh.iter().copied());
        // g'(d) = theta1 + theta2 d + 2 b btilde (v + d - n1) == 0
        let slope = theta1 + theta2 * d + 2.0 * 0.25 * p.btilde(0.0) * (v + d - n1);
        prop_assert!(slope.abs() < (theta2 + 1000.0) * 1e-4, "slope {slope}");
    }
}

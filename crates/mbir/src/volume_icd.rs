//! 3-D (multi-slice) ICD reconstruction.
//!
//! The full MBIR formulation the paper's slices come from: each axial
//! slice of a parallel-beam scan has its own sinogram, but the qGGMRF
//! prior couples voxels across slices through the 26-neighbourhood.
//! A voxel update is exactly Algorithm 1 with the neighbour sum taken
//! in 3-D.
//!
//! Two drivers:
//! - [`VolumeIcd::pass`]: sequential sweeps in randomized order;
//! - [`VolumeIcd::pass_slice_parallel`]: slices partitioned into
//!   even/odd *slabs* (a 1-D checkerboard); slices of one slab never
//!   neighbour each other, so worker threads update them concurrently
//!   with the same guarantees as PSV-ICD's SV checkerboard.

use crate::prior::Prior;
use crate::update::{compute_thetas, SinogramPair};
use ct_core::hu::rmse_hu;
use ct_core::image::Image;
use ct_core::sinogram::Sinogram;
use ct_core::sysmat::SystemMatrix;
use ct_core::volume::Volume;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// 3-D ICD reconstruction state: one error sinogram per slice, one
/// shared volume.
pub struct VolumeIcd<'a, P: Prior> {
    a: &'a SystemMatrix,
    prior: &'a P,
    weights: &'a [Sinogram],
    volume: Volume,
    errors: Vec<Sinogram>,
    seed: u64,
    pass_count: u64,
    updates: u64,
}

impl<'a, P: Prior> VolumeIcd<'a, P> {
    /// Initialize from per-slice measurements `ys` and a starting
    /// volume.
    pub fn new(
        a: &'a SystemMatrix,
        ys: &[Sinogram],
        weights: &'a [Sinogram],
        prior: &'a P,
        init: Volume,
    ) -> Self {
        assert_eq!(ys.len(), init.nz(), "one sinogram per slice");
        assert_eq!(weights.len(), init.nz());
        let errors = ys
            .iter()
            .enumerate()
            .map(|(z, y)| {
                let ax = a.forward(&init.slice(z));
                let mut e = y.clone();
                for (ev, axv) in e.data_mut().iter_mut().zip(ax.data()) {
                    *ev -= axv;
                }
                e
            })
            .collect();
        VolumeIcd { a, prior, weights, volume: init, errors, seed: 0, pass_count: 0, updates: 0 }
    }

    /// Current volume.
    pub fn volume(&self) -> &Volume {
        &self.volume
    }

    /// Per-slice error sinograms.
    pub fn errors(&self) -> &[Sinogram] {
        &self.errors
    }

    /// Equits of work (updates / total voxels).
    pub fn equits(&self) -> f64 {
        self.updates as f64 / self.volume.num_voxels() as f64
    }

    /// Update one voxel `(z, j)`; returns the applied delta.
    fn update_voxel(&mut self, z: usize, j: usize) -> f32 {
        let v = self.volume.get(z, j);
        let col = self.a.column(j);
        let th = {
            let pair = SinogramPair { e: &mut self.errors[z], w: &self.weights[z] };
            compute_thetas(&col, &pair)
        };
        let neigh: Vec<(f32, f32)> = self
            .volume
            .neighbors26(z, j)
            .into_iter()
            .map(|(zz, jj, class)| (self.volume.get(zz, jj), class.weight()))
            .collect();
        let mut it = neigh.iter().copied();
        let mut delta = self.prior.step(v, th.theta1, th.theta2, &mut it);
        if v + delta < 0.0 {
            delta = -v;
        }
        if delta != 0.0 {
            self.volume.set(z, j, v + delta);
            let mut pair = SinogramPair { e: &mut self.errors[z], w: &self.weights[z] };
            crate::update::apply_delta(&col, &mut pair, delta);
        }
        delta
    }

    /// One sequential pass over every voxel of every slice.
    pub fn pass(&mut self) {
        self.pass_count += 1;
        let n = self.volume.grid().num_voxels();
        let mut order: Vec<u32> = (0..(n * self.volume.nz()) as u32).collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.pass_count.wrapping_mul(0x9e3779b9));
        order.shuffle(&mut rng);
        for lin in order {
            let z = lin as usize / n;
            let j = lin as usize % n;
            self.update_voxel(z, j);
            self.updates += 1;
        }
    }

    /// One pass with slice-level parallelism: even slices concurrently,
    /// then odd slices. Within a slab, each worker owns whole slices
    /// (its own error sinogram); prior reads into the frozen opposite
    /// slab are safe. `threads == 0` defers to the process-wide setting
    /// (`mbir_parallel::threads()`); any thread count produces the same
    /// volume bit for bit.
    pub fn pass_slice_parallel(&mut self, threads: usize) {
        self.pass_count += 1;
        let n = self.volume.grid().num_voxels();
        let nz = self.volume.nz();
        for parity in 0..2usize {
            let slab: Vec<usize> = (0..nz).filter(|z| z % 2 == parity).collect();
            let volume = &self.volume;
            let errors = &self.errors;
            let a = self.a;
            let prior = self.prior;
            let weights = self.weights;
            let seed = self.seed;
            let pass = self.pass_count;
            let results: Vec<(usize, Image, Sinogram, u64)> =
                mbir_parallel::par_map(threads, slab.len(), |i| {
                    let z = slab[i];
                    let mut img = volume.slice(z);
                    let mut err = errors[z].clone();
                    let mut order: Vec<u32> = (0..n as u32).collect();
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ pass.wrapping_mul(97) ^ (z as u64).wrapping_mul(0x9e3779b9),
                    );
                    order.shuffle(&mut rng);
                    let mut updates = 0u64;
                    for &j in &order {
                        let j = j as usize;
                        let v = img.get(j);
                        let col = a.column(j);
                        let th = {
                            let pair = SinogramPair { e: &mut err, w: &weights[z] };
                            compute_thetas(&col, &pair)
                        };
                        // 3-D neighbours: in-slab reads come from
                        // this worker's own image; cross-slab reads
                        // from the frozen shared volume.
                        let neigh: Vec<(f32, f32)> = volume
                            .neighbors26(z, j)
                            .into_iter()
                            .map(|(zz, jj, class)| {
                                let val = if zz == z { img.get(jj) } else { volume.get(zz, jj) };
                                (val, class.weight())
                            })
                            .collect();
                        let mut it = neigh.iter().copied();
                        let mut delta = prior.step(v, th.theta1, th.theta2, &mut it);
                        if v + delta < 0.0 {
                            delta = -v;
                        }
                        if delta != 0.0 {
                            img.set(j, v + delta);
                            let mut pair = SinogramPair { e: &mut err, w: &weights[z] };
                            crate::update::apply_delta(&col, &mut pair, delta);
                        }
                        updates += 1;
                    }
                    (z, img, err, updates)
                });
            for (z, img, err, updates) in results {
                self.volume.set_slice(z, &img);
                self.errors[z] = err;
                self.updates += updates;
            }
        }
    }

    /// Run passes until RMSE (HU) against `golden` drops below the
    /// threshold or `max_passes` elapse; returns the final RMSE.
    pub fn run_to_rmse(&mut self, golden: &Volume, threshold_hu: f32, max_passes: usize) -> f32 {
        let to_hu = 1000.0 / ct_core::phantom::MU_WATER;
        let mut rmse = self.volume.rmse(golden) * to_hu;
        for _ in 0..max_passes {
            if rmse < threshold_hu {
                break;
            }
            self.pass();
            rmse = self.volume.rmse(golden) * to_hu;
        }
        rmse
    }
}

/// RMSE between matching slices, in HU (helper for tests/examples).
pub fn slice_rmse_hu(v: &Volume, z: usize, golden: &Image) -> f32 {
    rmse_hu(&v.slice(z), golden)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::QggmrfPrior;
    use ct_core::geometry::Geometry;
    use ct_core::phantom::Phantom;
    use ct_core::project::{scan, NoiseModel};

    fn setup() -> (Geometry, SystemMatrix, Vec<Sinogram>, Vec<Sinogram>, Volume) {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        // Three slices: a cylinder that changes radius along z.
        let slices: Vec<Image> = [0.35f32, 0.5, 0.6]
            .iter()
            .map(|&r| Phantom::water_cylinder(r).render(g.grid, 2))
            .collect();
        let mut ys = Vec::new();
        let mut ws = Vec::new();
        for (z, s) in slices.iter().enumerate() {
            let sc = scan(&a, s, Some(NoiseModel { i0: 1.0e5 }), 100 + z as u64);
            ys.push(sc.y);
            ws.push(sc.weights);
        }
        (g, a, ys, ws, Volume::from_slices(&slices))
    }

    #[test]
    fn volume_reconstruction_converges() {
        let (g, a, ys, ws, truth) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let init = Volume::zeros(g.grid, 3);
        let mut icd = VolumeIcd::new(&a, &ys, &ws, &prior, init);
        for _ in 0..15 {
            icd.pass();
        }
        let to_hu = 1000.0 / ct_core::phantom::MU_WATER;
        let rmse = icd.volume().rmse(&truth) * to_hu;
        assert!(rmse < 300.0, "rmse {rmse} HU");
        // Slices differ (the radius varies along z).
        assert!(icd.volume().slice(0) != icd.volume().slice(2));
    }

    #[test]
    fn error_invariant_per_slice() {
        let (_, a, ys, ws, truth) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let init = Volume::zeros(truth.grid(), 3);
        let mut icd = VolumeIcd::new(&a, &ys, &ws, &prior, init);
        icd.pass();
        for (z, y) in ys.iter().enumerate() {
            let ax = a.forward(&icd.volume().slice(z));
            for i in 0..y.data().len() {
                let expect = y.data()[i] - ax.data()[i];
                assert!((icd.errors()[z].data()[i] - expect).abs() < 2e-3);
            }
        }
    }

    #[test]
    fn slice_parallel_matches_itself_across_thread_counts() {
        let (g, a, ys, ws, _) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let run = |threads: usize| {
            let mut icd = VolumeIcd::new(&a, &ys, &ws, &prior, Volume::zeros(g.grid, 3));
            for _ in 0..3 {
                icd.pass_slice_parallel(threads);
            }
            icd.volume().clone()
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn parallel_and_sequential_agree_closely() {
        let (g, a, ys, ws, _) = setup();
        let prior = QggmrfPrior::standard(0.002);
        // Start both near the optimum (FBP init, as the pipelines do);
        // different visit orders then keep them in the same small
        // neighbourhood of the shared (convex) fixed point.
        let init = Volume::from_slices(
            &ys.iter().map(|y| ct_core::fbp::reconstruct(&g, y)).collect::<Vec<_>>(),
        );
        let mut seq = VolumeIcd::new(&a, &ys, &ws, &prior, init.clone());
        let mut par = VolumeIcd::new(&a, &ys, &ws, &prior, init);
        for _ in 0..12 {
            seq.pass();
            par.pass_slice_parallel(2);
        }
        let to_hu = 1000.0 / ct_core::phantom::MU_WATER;
        let diff = seq.volume().rmse(par.volume()) * to_hu;
        assert!(diff < 15.0, "sequential vs slice-parallel differ by {diff} HU");
    }

    #[test]
    fn prior_couples_slices() {
        // With a strong prior, a slice reconstructed between two
        // brighter slices is pulled up relative to reconstructing it
        // alone — evidence the 3-D neighbourhood acts.
        let (g, a, _, _, _) = setup();
        let bright = Phantom::water_cylinder(0.5).render(g.grid, 1);
        let dark = Image::zeros(g.grid);
        let ys: Vec<Sinogram> = vec![a.forward(&bright), a.forward(&dark), a.forward(&bright)];
        let ws = vec![Sinogram::filled(&Geometry::tiny_scale(), 1.0); 3];
        let prior = QggmrfPrior { sigma: 0.02, ..QggmrfPrior::standard(0.02) };
        let mut icd = VolumeIcd::new(&a, &ys, &ws, &prior, Volume::zeros(g.grid, 3));
        for _ in 0..6 {
            icd.pass();
        }
        let center = g.grid.index(12, 12);
        let mid = icd.volume().get(1, center);
        assert!(mid > 0.0, "middle slice pulled up by the 3-D prior: {mid}");
    }

    #[test]
    fn equit_accounting() {
        let (g, a, ys, ws, _) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let mut icd = VolumeIcd::new(&a, &ys, &ws, &prior, Volume::zeros(g.grid, 3));
        icd.pass();
        assert!((icd.equits() - 1.0).abs() < 1e-9);
        icd.pass_slice_parallel(2);
        assert!((icd.equits() - 2.0).abs() < 1e-9);
    }
}

//! MRF priors and their half-quadratic surrogate solves.
//!
//! ICD's 1-D subproblem at voxel `v` with current value `x_v` is
//!
//! ```text
//! min_d  theta1 * d + theta2 * d^2 / 2 + sum_n b_n rho(x_v + d - x_n)
//! ```
//!
//! For the qGGMRF potential this has no closed form; the standard MBIR
//! approach (Thibault et al., used by the paper's reference code \[16\])
//! substitutes the symmetric-bound quadratic surrogate
//! `rho(u) <= btilde * u^2 + const` with `btilde = rho'(u0) / (2 u0)`
//! evaluated at the current difference, giving the closed-form step the
//! paper's Algorithm 1 calls "func" — "computationally inexpensive".

use ct_core::image::Image;

/// Clique weights for the 8-neighbour 2-D MRF, normalized to sum to 1:
/// edge neighbours weigh `1`, diagonal neighbours `1/sqrt(2)`.
pub const B_EDGE: f32 = 0.146_446_6;
/// Diagonal-neighbour clique weight; see [`B_EDGE`].
pub const B_DIAG: f32 = 0.103_553_4;

/// Clique weight for a neighbour of the given class.
#[inline]
pub fn clique_weight(edge: bool) -> f32 {
    if edge {
        B_EDGE
    } else {
        B_DIAG
    }
}

/// A pairwise MRF prior usable inside the ICD voxel update.
pub trait Prior: Sync + Send {
    /// Potential value `rho(u)` for a clique difference `u`.
    fn rho(&self, u: f32) -> f32;

    /// Surrogate curvature `btilde(u) = rho'(u) / (2u)`, continuous at
    /// `u = 0`.
    fn btilde(&self, u: f32) -> f32;

    /// Solve the surrogate 1-D subproblem: returns the step `d`.
    ///
    /// `neighbors` yields `(neighbor_value, clique_weight)` pairs.
    /// The default implementation is the closed-form surrogate step
    ///
    /// ```text
    /// d = -(theta1 + sum 2 b btilde (v - x_n)) / (theta2 + sum 2 b btilde)
    /// ```
    fn step(
        &self,
        v: f32,
        theta1: f32,
        theta2: f32,
        neighbors: &mut dyn Iterator<Item = (f32, f32)>,
    ) -> f32 {
        let mut num = theta1;
        let mut den = theta2;
        for (xn, b) in neighbors {
            let u = v - xn;
            let bb = 2.0 * b * self.btilde(u);
            num += bb * u;
            den += bb;
        }
        if den <= 0.0 {
            0.0
        } else {
            -num / den
        }
    }

    /// Total prior cost over all cliques of `img` (each unordered pair
    /// counted once).
    fn cost(&self, img: &Image) -> f64 {
        let mut acc = 0.0f64;
        let n = img.grid().num_voxels();
        for j in 0..n {
            let vj = img.get(j);
            for (k, edge) in img.neighbors8(j).iter() {
                if k > j {
                    acc += (clique_weight(edge) * self.rho(vj - img.get(k))) as f64;
                }
            }
        }
        acc
    }
}

/// Quadratic (Gaussian MRF) prior: `rho(u) = u^2 / (2 sigma^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticPrior {
    /// Regularization scale (image units).
    pub sigma: f32,
}

impl Prior for QuadraticPrior {
    #[inline]
    fn rho(&self, u: f32) -> f32 {
        u * u / (2.0 * self.sigma * self.sigma)
    }

    #[inline]
    fn btilde(&self, _u: f32) -> f32 {
        1.0 / (2.0 * self.sigma * self.sigma)
    }
}

/// q-generalized Gaussian MRF (Thibault et al. 2007):
///
/// ```text
/// rho(u) = (|u|^p / (p sigma^p)) * r / (1 + r),   r = |u / (T sigma)|^(q-p)
/// ```
///
/// with `1 <= p < q <= 2`. Near zero it is quadratic (`|u|^q`, `q = 2`);
/// in the tails it grows like `|u|^p` (`p = 1.2`), preserving edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QggmrfPrior {
    /// Tail exponent, `1 <= p < q`.
    pub p: f32,
    /// Near-zero exponent, typically `2.0`.
    pub q: f32,
    /// Transition threshold in units of `sigma`.
    pub t: f32,
    /// Regularization scale (image units).
    pub sigma: f32,
}

impl QggmrfPrior {
    /// The conventional `p = 1.2, q = 2, T = 1` setting at scale
    /// `sigma`.
    pub fn standard(sigma: f32) -> Self {
        QggmrfPrior { p: 1.2, q: 2.0, t: 1.0, sigma }
    }
}

impl Prior for QggmrfPrior {
    fn rho(&self, u: f32) -> f32 {
        let au = u.abs();
        if au == 0.0 {
            return 0.0;
        }
        let r = (au / (self.t * self.sigma)).powf(self.q - self.p);
        au.powf(self.p) / (self.p * self.sigma.powf(self.p)) * r / (1.0 + r)
    }

    fn btilde(&self, u: f32) -> f32 {
        let au = u.abs();
        let ts = self.t * self.sigma;
        let sp = self.sigma.powf(self.p);
        if au < 1e-12 {
            // Limit of rho'(u)/(2u) as u -> 0 (requires q = 2 for a
            // finite nonzero value; for q < 2 the limit is +inf, which
            // never occurs with the standard parameters).
            return self.q / (2.0 * self.p * sp * ts.powf(self.q - self.p));
        }
        let r = (au / ts).powf(self.q - self.p);
        // rho'(u) = sign(u) |u|^(p-1)/sigma^p * r/(1+r) * (1 + (q-p)/(p (1+r)))
        let rho_prime_over_u = au.powf(self.p - 2.0) / sp * r / (1.0 + r)
            * (1.0 + (self.q - self.p) / (self.p * (1.0 + r)));
        rho_prime_over_u / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::geometry::ImageGrid;

    fn qg() -> QggmrfPrior {
        QggmrfPrior::standard(0.01)
    }

    #[test]
    fn clique_weights_normalized() {
        assert!((4.0 * B_EDGE + 4.0 * B_DIAG - 1.0).abs() < 1e-5);
        assert!((B_EDGE / B_DIAG - std::f32::consts::SQRT_2).abs() < 1e-4);
    }

    #[test]
    fn rho_is_even_and_increasing() {
        let p = qg();
        let mut prev = 0.0;
        for i in 0..100 {
            let u = i as f32 * 0.001;
            let r = p.rho(u);
            assert!((p.rho(-u) - r).abs() < 1e-9);
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn qggmrf_is_quadratic_near_zero() {
        let p = qg();
        // rho(u) ~ btilde(0) * u^2 for small u.
        let b0 = p.btilde(0.0);
        for &u in &[1e-4f32, 2e-4, 5e-4] {
            let ratio = p.rho(u) / (b0 * u * u);
            assert!((ratio - 1.0).abs() < 0.1, "u={u}: ratio {ratio}");
        }
    }

    #[test]
    fn qggmrf_tail_grows_slower_than_quadratic() {
        let p = qg();
        let quad = QuadraticPrior { sigma: 0.01 };
        // At 50 sigma the qGGMRF (p = 1.2) lies far below the quadratic.
        let u = 0.5;
        assert!(p.rho(u) < 0.2 * quad.rho(u));
    }

    #[test]
    fn btilde_continuous_at_zero() {
        let p = qg();
        let b0 = p.btilde(0.0);
        let beps = p.btilde(1e-7);
        assert!((b0 - beps).abs() / b0 < 1e-2, "b0 {b0} beps {beps}");
    }

    #[test]
    fn btilde_matches_numeric_derivative() {
        let p = qg();
        for &u in &[0.002f32, 0.01, 0.03, 0.2] {
            let h = u * 1e-3;
            let drho = (p.rho(u + h) - p.rho(u - h)) / (2.0 * h);
            let bt = p.btilde(u);
            assert!(
                ((drho / (2.0 * u)) - bt).abs() / bt < 0.02,
                "u={u}: numeric {} vs {}",
                drho / (2.0 * u),
                bt
            );
        }
    }

    #[test]
    fn surrogate_step_decreases_objective() {
        // For the full 1-D objective g(d) = theta1 d + theta2 d^2/2 +
        // sum b rho(v + d - xn), the surrogate step must not increase g
        // (majorization-minimization guarantee).
        let p = qg();
        let v = 0.02f32;
        let theta1 = -3.0f32;
        let theta2 = 900.0f32;
        let neigh = [(0.0f32, B_EDGE), (0.05, B_DIAG), (0.02, B_EDGE)];
        let g = |d: f32| -> f32 {
            theta1 * d
                + theta2 * d * d / 2.0
                + neigh.iter().map(|&(xn, b)| b * p.rho(v + d - xn)).sum::<f32>()
        };
        let d = p.step(v, theta1, theta2, &mut neigh.iter().copied());
        assert!(g(d) <= g(0.0) + 1e-7, "g(d)={} g(0)={}", g(d), g(0.0));
    }

    #[test]
    fn quadratic_step_is_exact_minimizer() {
        let p = QuadraticPrior { sigma: 0.01 };
        let v = 0.01f32;
        let theta1 = 5.0f32;
        let theta2 = 2000.0f32;
        let neigh = [(0.03f32, B_EDGE), (0.0, B_EDGE)];
        let d = p.step(v, theta1, theta2, &mut neigh.iter().copied());
        // Check stationarity of the exact objective.
        let h = 1e-5f32;
        let g = |d: f32| -> f32 {
            theta1 * d
                + theta2 * d * d / 2.0
                + neigh.iter().map(|&(xn, b)| b * p.rho(v + d - xn)).sum::<f32>()
        };
        let slope = (g(d + h) - g(d - h)) / (2.0 * h);
        assert!(slope.abs() < 0.05, "slope {slope}");
    }

    #[test]
    fn zero_thetas_pull_toward_neighbors() {
        let p = qg();
        // With no data term, the step moves v toward the neighbour mean.
        let v = 0.1f32;
        let neigh = [(0.0f32, B_EDGE); 4];
        let d = p.step(v, 0.0, 0.0, &mut neigh.iter().copied());
        assert!(d < 0.0);
        assert!(v + d >= -1e-6);
    }

    #[test]
    fn prior_cost_zero_for_flat_image() {
        let img = Image::from_vec(ImageGrid::square(6, 1.0), vec![0.7; 36]);
        assert_eq!(qg().cost(&img), 0.0);
        let mut img2 = img.clone();
        img2.set(10, 0.9);
        assert!(qg().cost(&img2) > 0.0);
    }
}

//! MBIR core: the statistical reconstruction machinery shared by the
//! sequential ICD baseline, PSV-ICD (CPU), and GPU-ICD.
//!
//! MBIR reconstructs `x` by minimizing the MAP cost
//!
//! ```text
//! f(x) = 1/2 ||y - A x||^2_W  +  sum_{cliques {i,j}} b_ij rho(x_i - x_j)
//! ```
//!
//! with Iterative Coordinate Descent: voxels are visited one at a time
//! and each visit solves the 1-D minimization in that voxel exactly
//! (to surrogate precision), maintaining the error sinogram
//! `e = y - A x` incrementally (the paper's Algorithm 1).
//!
//! - [`prior`]: the q-generalized Gaussian MRF (qGGMRF) and quadratic
//!   MRF priors with their half-quadratic surrogate solves.
//! - [`update`]: `theta1`/`theta2` accumulation and the single-voxel
//!   update, generic over where the error/weight data lives (the full
//!   sinogram here; SuperVoxel buffers in the `supervoxel` crate).
//! - [`sequential`]: the sequential ICD driver (random visit order,
//!   zero-skipping, equit accounting) used to produce golden images.
//! - [`convergence`]: cost evaluation and RMSE-in-HU tracking.

#![warn(missing_docs)]

pub mod convergence;
pub mod nhicd;
pub mod prior;
pub mod sequential;
pub mod stopping;
pub mod update;
pub mod volume_icd;

pub use convergence::{cost, ConvergenceTrace};
pub use nhicd::{NhConfig, NhIcd};
pub use prior::{Prior, QggmrfPrior, QuadraticPrior};
pub use sequential::{IcdConfig, IcdStats, SequentialIcd};
pub use stopping::{StopRule, StopState};
pub use update::{
    apply_delta, compute_thetas, update_voxel, zero_skippable, SinogramPair, Thetas, WeightedError,
};
pub use volume_icd::VolumeIcd;

//! Golden-free stopping criteria.
//!
//! The paper's evaluation measures convergence against a 40-equit
//! golden image — fine for benchmarking, useless in production (the
//! golden costs more than the reconstruction). This module provides
//! the practical criteria real MBIR deployments stop on:
//!
//! - [`StopRule::MeanUpdate`]: stop when the mean |voxel update| of a
//!   pass falls below a threshold (in HU) — the reference MBIR code's
//!   default;
//! - [`StopRule::CostPlateau`]: stop when the relative MAP-cost
//!   decrease per pass falls below a tolerance;
//! - [`StopRule::MaxEquits`]: a work budget.
//!
//! [`StopState`] tracks the signals incrementally so drivers can feed
//! it per-pass statistics without recomputing anything.

use crate::sequential::IcdStats;

/// When to stop iterating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Mean |update| per visited voxel below this many HU.
    MeanUpdate {
        /// Threshold in Hounsfield units.
        hu: f32,
    },
    /// Relative cost decrease per pass below `tol`.
    CostPlateau {
        /// Relative tolerance, e.g. `1e-4`.
        tol: f64,
    },
    /// Hard work budget in equits.
    MaxEquits {
        /// Budget.
        equits: f64,
    },
}

/// Incremental evaluator for a [`StopRule`].
#[derive(Debug, Clone)]
pub struct StopState {
    rule: StopRule,
    last_cost: Option<f64>,
    satisfied: bool,
}

impl StopState {
    /// Fresh evaluator.
    pub fn new(rule: StopRule) -> Self {
        StopState { rule, last_cost: None, satisfied: false }
    }

    /// Feed one pass's outcome. `pass_stats` are the *pass's own*
    /// counters, `total` the cumulative ones, `cost` the current MAP
    /// cost (only needed for [`StopRule::CostPlateau`]; pass the same
    /// value otherwise), `nvox` the voxel count.
    pub fn observe(&mut self, pass_stats: &IcdStats, total: &IcdStats, cost: f64, nvox: usize) {
        match self.rule {
            StopRule::MeanUpdate { hu } => {
                if pass_stats.updates > 0 {
                    let mean_mu = pass_stats.total_abs_delta / pass_stats.updates as f64;
                    let mean_hu = mean_mu * 1000.0 / ct_core::phantom::MU_WATER as f64;
                    if mean_hu < hu as f64 {
                        self.satisfied = true;
                    }
                } else {
                    // A pass that updated nothing is as converged as it
                    // gets.
                    self.satisfied = true;
                }
            }
            StopRule::CostPlateau { tol } => {
                if let Some(prev) = self.last_cost {
                    let denom = prev.abs().max(1e-30);
                    if (prev - cost) / denom < tol {
                        self.satisfied = true;
                    }
                }
                self.last_cost = Some(cost);
            }
            StopRule::MaxEquits { equits } => {
                if total.equits(nvox) >= equits {
                    self.satisfied = true;
                }
            }
        }
    }

    /// Whether the rule has fired.
    pub fn should_stop(&self) -> bool {
        self.satisfied
    }

    /// The rule being evaluated.
    pub fn rule(&self) -> StopRule {
        self.rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(updates: u64, total_abs_delta: f64) -> IcdStats {
        IcdStats { updates, skipped: 0, total_abs_delta }
    }

    #[test]
    fn mean_update_fires_below_threshold() {
        let mut s = StopState::new(StopRule::MeanUpdate { hu: 1.0 });
        // 0.0001 mu per update = 5 HU: keep going.
        s.observe(&stats(100, 0.01), &stats(100, 0.01), 0.0, 1000);
        assert!(!s.should_stop());
        // 0.4 HU mean: stop.
        s.observe(&stats(100, 0.0008), &stats(200, 0.0108), 0.0, 1000);
        assert!(s.should_stop());
    }

    #[test]
    fn mean_update_fires_on_empty_pass() {
        let mut s = StopState::new(StopRule::MeanUpdate { hu: 1.0 });
        s.observe(&stats(0, 0.0), &stats(0, 0.0), 0.0, 1000);
        assert!(s.should_stop());
    }

    #[test]
    fn cost_plateau_needs_two_observations() {
        let mut s = StopState::new(StopRule::CostPlateau { tol: 1e-3 });
        s.observe(&stats(1, 1.0), &stats(1, 1.0), 100.0, 10);
        assert!(!s.should_stop());
        // 10% drop: keep going.
        s.observe(&stats(1, 1.0), &stats(2, 2.0), 90.0, 10);
        assert!(!s.should_stop());
        // 0.01% drop: plateau.
        s.observe(&stats(1, 1.0), &stats(3, 3.0), 89.995, 10);
        assert!(s.should_stop());
    }

    #[test]
    fn max_equits_budget() {
        let mut s = StopState::new(StopRule::MaxEquits { equits: 2.0 });
        s.observe(&stats(10, 0.0), &stats(10, 0.0), 0.0, 10);
        assert!(!s.should_stop()); // 1 equit
        s.observe(&stats(10, 0.0), &stats(20, 0.0), 0.0, 10);
        assert!(s.should_stop()); // 2 equits
    }
}

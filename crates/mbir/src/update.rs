//! The single-voxel ICD update — the paper's Algorithm 1.
//!
//! A voxel visit accumulates `theta1 = -sum w A e` and
//! `theta2 = sum w A^2` over the voxel's sinogram footprint, solves the
//! 1-D prior subproblem for the step `delta`, and writes
//! `e -= A delta` back over the same footprint.
//!
//! The accumulation is generic over [`WeightedError`] so the exact same
//! update runs against the full error sinogram (sequential ICD), a
//! SuperVoxel buffer (PSV-ICD and GPU-ICD), or the transformed/padded
//! layouts of paper Section 4.1.

use crate::prior::{clique_weight, Prior};
use ct_core::image::Image;
use ct_core::sinogram::Sinogram;
use ct_core::sysmat::ColumnView;

/// The data-term coefficients of one voxel visit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Thetas {
    /// `-sum_i sum_c w * A * e` (negative weighted correlation).
    pub theta1: f32,
    /// `sum_i sum_c w * A^2` (data-term curvature).
    pub theta2: f32,
}

/// Read/write access to co-indexed error and weight entries, addressed
/// by `(view, channel)` in detector coordinates.
pub trait WeightedError {
    /// `(e, w)` at `(view, channel)`.
    fn get(&self, view: usize, ch: usize) -> (f32, f32);

    /// `e -= amount` at `(view, channel)`.
    fn sub(&mut self, view: usize, ch: usize, amount: f32);
}

/// The plain pairing of the full error sinogram with the weight
/// sinogram (sequential ICD).
pub struct SinogramPair<'a> {
    /// Error sinogram `e = y - A x`, updated in place.
    pub e: &'a mut Sinogram,
    /// Weight sinogram `w` (read-only).
    pub w: &'a Sinogram,
}

impl WeightedError for SinogramPair<'_> {
    #[inline]
    fn get(&self, view: usize, ch: usize) -> (f32, f32) {
        (self.e.at(view, ch), self.w.at(view, ch))
    }

    #[inline]
    fn sub(&mut self, view: usize, ch: usize, amount: f32) {
        *self.e.at_mut(view, ch) -= amount;
    }
}

/// Accumulate `theta1`, `theta2` over a voxel's footprint
/// (steps 3-6 of Algorithm 1).
///
/// Walks the raw CSR slices directly to keep this innermost loop free
/// of per-view iterator construction. Entry `k` of the column's flat
/// value stream lands in canonical lane `k % 8` of an
/// [`mbir_simd::ThetaAcc`], so this element-at-a-time walk is the
/// scalar reference the staged lane kernels
/// ([`mbir_simd::theta_flat_lanes`]) must — and do — match bitwise.
pub fn compute_thetas<E: WeightedError>(col: &ColumnView<'_>, ew: &E) -> Thetas {
    let mut acc = mbir_simd::ThetaAcc::new();
    let first = col.first_channels();
    let count = col.counts();
    let values = col.values_flat();
    let mut off = 0usize;
    for view in 0..first.len() {
        let n = count[view] as usize;
        let fc = first[view] as usize;
        for (k, &a) in values[off..off + n].iter().enumerate() {
            let (e, w) = ew.get(view, fc + k);
            acc.push(a, e, w);
        }
        off += n;
    }
    let (theta1, theta2) = acc.finish();
    Thetas { theta1, theta2 }
}

/// Scatter `e -= A * delta` over the voxel's footprint
/// (steps 9-11 of Algorithm 1).
pub fn apply_delta<E: WeightedError>(col: &ColumnView<'_>, ew: &mut E, delta: f32) {
    let first = col.first_channels();
    let count = col.counts();
    let values = col.values_flat();
    let mut off = 0usize;
    for view in 0..first.len() {
        let n = count[view] as usize;
        let fc = first[view] as usize;
        for (k, &a) in values[off..off + n].iter().enumerate() {
            ew.sub(view, fc + k, a * delta);
        }
        off += n;
    }
}

/// Whether voxel `j` can be zero-skipped: its value and all neighbour
/// values are exactly zero (paper Section 2).
pub fn zero_skippable(image: &Image, j: usize) -> bool {
    image.get(j) == 0.0 && image.neighbors8(j).iter().all(|(k, _)| image.get(k) == 0.0)
}

/// Perform one full voxel update (Algorithm 1): returns the applied
/// step `delta` (0 when the solve yields no movement).
///
/// `positivity` clips the voxel at zero, the standard MBIR constraint
/// for attenuation images.
pub fn update_voxel<E: WeightedError, P: Prior>(
    j: usize,
    image: &mut Image,
    col: &ColumnView<'_>,
    ew: &mut E,
    prior: &P,
    positivity: bool,
) -> f32 {
    let v = image.get(j);
    let th = compute_thetas(col, ew);
    let nb = image.neighbors8(j);
    let mut neigh = nb.iter().map(|(k, edge)| (image.get(k), clique_weight(edge)));
    let mut delta = prior.step(v, th.theta1, th.theta2, &mut neigh);
    drop(neigh);
    if positivity && v + delta < 0.0 {
        delta = -v;
    }
    if delta != 0.0 {
        image.set(j, v + delta);
        apply_delta(col, ew, delta);
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::QuadraticPrior;
    use ct_core::geometry::Geometry;
    use ct_core::phantom::Phantom;
    use ct_core::sysmat::SystemMatrix;

    fn setup() -> (Geometry, SystemMatrix, Image, Sinogram, Sinogram) {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let truth = Phantom::water_cylinder(0.5).render(g.grid, 1);
        let y = a.forward(&truth);
        let w = Sinogram::filled(&g, 1.0);
        (g, a, truth, y, w)
    }

    #[test]
    fn thetas_zero_when_error_zero() {
        let (g, a, truth, y, w) = setup();
        let mut e = y.clone();
        // e = y - A x with x = truth gives exactly zero error.
        let ax = a.forward(&truth);
        for (ei, axi) in e.data_mut().iter_mut().zip(ax.data()) {
            *ei -= axi;
        }
        let j = g.grid.index(12, 12);
        let pair = SinogramPair { e: &mut e, w: &w };
        let th = compute_thetas(&a.column(j), &pair);
        assert!(th.theta1.abs() < 1e-4);
        assert!(th.theta2 > 0.0);
    }

    #[test]
    fn theta2_is_weighted_column_norm() {
        let (g, a, _, _, w) = setup();
        let mut e = Sinogram::zeros(&g);
        let j = g.grid.index(10, 14);
        let pair = SinogramPair { e: &mut e, w: &w };
        let th = compute_thetas(&a.column(j), &pair);
        assert!((th.theta2 - a.column_norm_sq(j)).abs() / th.theta2 < 1e-5);
    }

    #[test]
    fn error_invariant_maintained() {
        // After any sequence of updates, e must equal y - A x exactly
        // (to float precision).
        let (g, a, _, y, w) = setup();
        let mut image = Image::zeros(g.grid);
        let mut e = y.clone();
        let prior = QuadraticPrior { sigma: 0.01 };
        {
            let mut pair = SinogramPair { e: &mut e, w: &w };
            for j in (0..g.grid.num_voxels()).step_by(3) {
                update_voxel(j, &mut image, &a.column(j), &mut pair, &prior, true);
            }
        }
        let ax = a.forward(&image);
        for i in 0..y.data().len() {
            let expect = y.data()[i] - ax.data()[i];
            assert!(
                (e.data()[i] - expect).abs() < 1e-3,
                "i={i}: e={} expect={}",
                e.data()[i],
                expect
            );
        }
    }

    #[test]
    fn update_reduces_cost() {
        let (g, a, _, y, w) = setup();
        let mut image = Image::zeros(g.grid);
        let mut e = y.clone();
        let prior = QuadraticPrior { sigma: 0.01 };
        let cost = |e: &Sinogram, img: &Image| -> f64 {
            let data: f64 = e
                .data()
                .iter()
                .zip(w.data())
                .map(|(&ei, &wi)| 0.5 * (wi as f64) * (ei as f64) * (ei as f64))
                .sum();
            data + prior.cost(img)
        };
        let before = cost(&e, &image);
        let j = g.grid.index(12, 12);
        let mut pair = SinogramPair { e: &mut e, w: &w };
        let delta = update_voxel(j, &mut image, &a.column(j), &mut pair, &prior, true);
        assert!(delta > 0.0); // the cylinder is positive there
        let after = cost(&e, &image);
        assert!(after < before, "before {before} after {after}");
    }

    #[test]
    fn positivity_clips_at_zero() {
        let (g, a, _, _, w) = setup();
        let mut image = Image::zeros(g.grid);
        // Negative measurements drive the unconstrained step negative.
        let mut e = Sinogram::filled(&g, -1.0);
        let prior = QuadraticPrior { sigma: 0.01 };
        let j = g.grid.index(12, 12);
        let mut pair = SinogramPair { e: &mut e, w: &w };
        let delta = update_voxel(j, &mut image, &a.column(j), &mut pair, &prior, true);
        assert_eq!(delta, 0.0);
        assert_eq!(image.get(j), 0.0);
    }

    #[test]
    fn zero_skip_detection() {
        let (g, _, _, _, _) = setup();
        let mut image = Image::zeros(g.grid);
        assert!(zero_skippable(&image, g.grid.index(5, 5)));
        image.set(g.grid.index(5, 6), 0.5);
        assert!(!zero_skippable(&image, g.grid.index(5, 5)));
        assert!(!zero_skippable(&image, g.grid.index(5, 6)));
        assert!(zero_skippable(&image, g.grid.index(20, 20)));
    }
}

//! Sequential ICD — the single-core reference the paper's speedups are
//! measured against ("the publicly available, single-core MBIR
//! implementation \[16\]"), and the producer of golden images.
//!
//! Voxels are visited in a randomized order (faster convergence,
//! paper Section 2) with optional zero-skipping. Work is accounted in
//! *equits*: one equit is `N` voxel updates where `N` is the image's
//! voxel count.

use crate::prior::Prior;
use crate::update::{update_voxel, zero_skippable, SinogramPair};
use ct_core::hu::rmse_hu;
use ct_core::image::Image;
use ct_core::sinogram::Sinogram;
use ct_core::sysmat::SystemMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Knobs shared by the ICD drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IcdConfig {
    /// Skip voxels whose value and neighbourhood are all zero.
    pub zero_skip: bool,
    /// Clip voxel values at zero.
    pub positivity: bool,
    /// Shuffle the visit order each pass.
    pub randomize: bool,
    /// RNG seed for visit-order shuffles.
    pub seed: u64,
}

impl Default for IcdConfig {
    fn default() -> Self {
        IcdConfig { zero_skip: true, positivity: true, randomize: true, seed: 0 }
    }
}

/// Work counters for equit accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IcdStats {
    /// Voxel visits that performed the full update.
    pub updates: u64,
    /// Voxel visits skipped by zero-skipping.
    pub skipped: u64,
    /// Sum of `|delta|` over all updates (drives SV selection upstream).
    pub total_abs_delta: f64,
}

impl IcdStats {
    /// Equits represented by these counters for an image of `nvox`
    /// voxels.
    pub fn equits(&self, nvox: usize) -> f64 {
        self.updates as f64 / nvox as f64
    }
}

/// The sequential ICD reconstruction state.
pub struct SequentialIcd<'a, P: Prior> {
    a: &'a SystemMatrix,
    prior: &'a P,
    weights: &'a Sinogram,
    config: IcdConfig,
    image: Image,
    error: Sinogram,
    stats: IcdStats,
    pass_count: u64,
}

impl<'a, P: Prior> SequentialIcd<'a, P> {
    /// Initialize from a measurement `y` and starting image `init`
    /// (often zeros or an FBP image); computes `e = y - A init`.
    pub fn new(
        a: &'a SystemMatrix,
        y: &Sinogram,
        weights: &'a Sinogram,
        prior: &'a P,
        init: Image,
        config: IcdConfig,
    ) -> Self {
        let ax = a.forward(&init);
        let mut error = y.clone();
        for (e, axv) in error.data_mut().iter_mut().zip(ax.data()) {
            *e -= axv;
        }
        SequentialIcd {
            a,
            prior,
            weights,
            config,
            image: init,
            error,
            stats: IcdStats::default(),
            pass_count: 0,
        }
    }

    /// One pass visiting every voxel once (in randomized order).
    /// Returns the pass's own counters.
    pub fn pass(&mut self) -> IcdStats {
        let nvox = self.image.grid().num_voxels();
        let mut order: Vec<u32> = (0..nvox as u32).collect();
        if self.config.randomize {
            let mut rng =
                StdRng::seed_from_u64(self.config.seed ^ self.pass_count.wrapping_mul(0x9e3779b9));
            order.shuffle(&mut rng);
        }
        self.pass_count += 1;
        // Zero-skipping is suppressed on the first pass: from a zero
        // initial image it would otherwise skip every voxel and the
        // reconstruction could never start.
        let allow_skip = self.config.zero_skip && self.pass_count > 1;
        let mut pass_stats = IcdStats::default();
        for &j in &order {
            let j = j as usize;
            if allow_skip && zero_skippable(&self.image, j) {
                pass_stats.skipped += 1;
                continue;
            }
            let col = self.a.column(j);
            let mut pair = SinogramPair { e: &mut self.error, w: self.weights };
            let delta = update_voxel(
                j,
                &mut self.image,
                &col,
                &mut pair,
                self.prior,
                self.config.positivity,
            );
            pass_stats.updates += 1;
            pass_stats.total_abs_delta += delta.abs() as f64;
        }
        self.stats.updates += pass_stats.updates;
        self.stats.skipped += pass_stats.skipped;
        self.stats.total_abs_delta += pass_stats.total_abs_delta;
        pass_stats
    }

    /// Run passes until at least `equits` of work has been done.
    pub fn run_equits(&mut self, equits: f64) {
        let nvox = self.image.grid().num_voxels();
        while self.stats.equits(nvox) < equits {
            let before = self.stats.updates;
            self.pass();
            if self.stats.updates == before {
                break; // fully zero-skipped image
            }
        }
    }

    /// Run passes until the RMSE against `golden` drops below
    /// `threshold_hu`, or `max_passes` is reached. Returns the final
    /// RMSE in HU.
    pub fn run_to_rmse(&mut self, golden: &Image, threshold_hu: f32, max_passes: usize) -> f32 {
        let mut rmse = rmse_hu(&self.image, golden);
        for _ in 0..max_passes {
            if rmse < threshold_hu {
                break;
            }
            self.pass();
            rmse = rmse_hu(&self.image, golden);
        }
        rmse
    }

    /// Run passes until a golden-free [`crate::stopping::StopRule`]
    /// fires or `max_passes` elapse; returns passes used.
    pub fn run_until(&mut self, rule: crate::stopping::StopRule, max_passes: usize) -> usize {
        let mut state = crate::stopping::StopState::new(rule);
        let nvox = self.image.grid().num_voxels();
        for p in 0..max_passes {
            let pass_stats = self.pass();
            let cost = match rule {
                crate::stopping::StopRule::CostPlateau { .. } => {
                    crate::convergence::cost(&self.image, &self.error, self.weights, self.prior)
                }
                _ => 0.0,
            };
            state.observe(&pass_stats, &self.stats, cost, nvox);
            if state.should_stop() {
                return p + 1;
            }
        }
        max_passes
    }

    /// Current reconstruction.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Current error sinogram `e = y - A x`.
    pub fn error(&self) -> &Sinogram {
        &self.error
    }

    /// Cumulative work counters.
    pub fn stats(&self) -> IcdStats {
        self.stats
    }

    /// Equits of work done so far.
    pub fn equits(&self) -> f64 {
        self.stats.equits(self.image.grid().num_voxels())
    }

    /// Consume the driver, returning the reconstruction.
    pub fn into_image(self) -> Image {
        self.image
    }
}

/// Produce a golden image by running sequential ICD for `equits`
/// equits (the paper uses 40, "by when it is known to converge").
pub fn golden_image<P: Prior>(
    a: &SystemMatrix,
    y: &Sinogram,
    weights: &Sinogram,
    prior: &P,
    init: Image,
    equits: f64,
) -> Image {
    let mut icd = SequentialIcd::new(a, y, weights, prior, init, IcdConfig::default());
    icd.run_equits(equits);
    icd.into_image()
}

#[cfg(test)]
mod tests {
    use super::golden_image;
    use super::*;
    use crate::convergence::cost;
    use crate::prior::QggmrfPrior;
    use ct_core::geometry::Geometry;
    use ct_core::phantom::Phantom;
    use ct_core::project::{scan, NoiseModel};

    fn setup() -> (Geometry, SystemMatrix, ct_core::project::Scan) {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let truth = Phantom::water_cylinder(0.55).render(g.grid, 2);
        let s = scan(&a, &truth, Some(NoiseModel { i0: 1.0e5 }), 7);
        (g, a, s)
    }

    #[test]
    fn cost_decreases_monotonically() {
        let (g, a, s) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let mut icd = SequentialIcd::new(
            &a,
            &s.y,
            &s.weights,
            &prior,
            Image::zeros(g.grid),
            IcdConfig::default(),
        );
        let mut prev = cost(icd.image(), icd.error(), &s.weights, &prior);
        for _ in 0..4 {
            icd.pass();
            let c = cost(icd.image(), icd.error(), &s.weights, &prior);
            assert!(c <= prev + prev.abs() * 1e-6, "cost rose: {prev} -> {c}");
            prev = c;
        }
    }

    #[test]
    fn converges_to_golden_from_fbp_init() {
        // The paper's convergence criterion: RMSE < 10 HU against a
        // 40-equit golden image, reached within a handful of equits
        // when initialized from FBP.
        let (g, a, s) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let init = ct_core::fbp::reconstruct(&g, &s.y);
        let golden = golden_image(&a, &s.y, &s.weights, &prior, init.clone(), 40.0);
        // The golden image itself must be anatomically accurate.
        assert!(rmse_hu(&golden, &s.ground_truth) < 60.0);
        let mut icd = SequentialIcd::new(&a, &s.y, &s.weights, &prior, init, IcdConfig::default());
        let rmse = icd.run_to_rmse(&golden, 10.0, 12);
        assert!(rmse < 10.0, "rmse {rmse} HU after {:.1} equits", icd.equits());
        assert!(icd.equits() < 10.0, "took {:.1} equits", icd.equits());
    }

    #[test]
    fn zero_skip_reduces_updates_on_sparse_images() {
        let (g, a, s) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let mut with = SequentialIcd::new(
            &a,
            &s.y,
            &s.weights,
            &prior,
            Image::zeros(g.grid),
            IcdConfig { zero_skip: true, ..Default::default() },
        );
        let first = with.pass();
        // The first pass visits everything (skipping is suppressed).
        assert_eq!(first.skipped, 0);
        assert_eq!(first.updates, g.grid.num_voxels() as u64);
        // From the second pass on, far-from-object voxels (clipped to
        // zero by positivity) are skipped.
        let second = with.pass();
        assert!(second.skipped > 0, "no skips on second pass");
        assert!(second.updates < g.grid.num_voxels() as u64);
    }

    #[test]
    fn equits_accounting() {
        let (g, a, s) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let mut icd = SequentialIcd::new(
            &a,
            &s.y,
            &s.weights,
            &prior,
            Image::zeros(g.grid),
            IcdConfig { zero_skip: false, ..Default::default() },
        );
        icd.pass();
        assert!((icd.equits() - 1.0).abs() < 1e-9);
        icd.pass();
        assert!((icd.equits() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, a, s) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let run = |seed: u64| {
            let mut icd = SequentialIcd::new(
                &a,
                &s.y,
                &s.weights,
                &prior,
                Image::zeros(g.grid),
                IcdConfig { seed, ..Default::default() },
            );
            icd.run_equits(2.0);
            icd.into_image()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn error_sinogram_invariant_after_passes() {
        let (g, a, s) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let mut icd = SequentialIcd::new(
            &a,
            &s.y,
            &s.weights,
            &prior,
            Image::zeros(g.grid),
            IcdConfig::default(),
        );
        icd.pass();
        icd.pass();
        let ax = a.forward(icd.image());
        for i in 0..s.y.data().len() {
            let expect = s.y.data()[i] - ax.data()[i];
            assert!((icd.error().data()[i] - expect).abs() < 2e-3);
        }
        let _ = g;
    }
}

//! Cost evaluation and convergence tracking.

use crate::prior::Prior;
use ct_core::hu::rmse_hu;
use ct_core::image::Image;
use ct_core::sinogram::Sinogram;
use serde::{Deserialize, Serialize};

/// The MAP cost `1/2 sum w e^2 + prior(x)` given the maintained error
/// sinogram (ICD keeps `e = y - A x`, so no projection is needed).
pub fn cost<P: Prior>(image: &Image, error: &Sinogram, weights: &Sinogram, prior: &P) -> f64 {
    let data: f64 = error
        .data()
        .iter()
        .zip(weights.data())
        .map(|(&e, &w)| 0.5 * (w as f64) * (e as f64) * (e as f64))
        .sum();
    data + prior.cost(image)
}

/// One sample of a convergence trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Equits of work completed when the sample was taken.
    pub equits: f64,
    /// Modeled (or measured) elapsed seconds.
    pub seconds: f64,
    /// RMSE against the golden image, in Hounsfield units.
    pub rmse_hu: f32,
}

/// RMSE-vs-work/time samples for one reconstruction run (the data
/// behind the paper's Fig. 5).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// Samples in the order they were recorded.
    pub points: Vec<TracePoint>,
}

impl ConvergenceTrace {
    /// Record a sample.
    pub fn record(&mut self, equits: f64, seconds: f64, image: &Image, golden: &Image) {
        self.points.push(TracePoint { equits, seconds, rmse_hu: rmse_hu(image, golden) });
    }

    /// First sample at which RMSE dropped below `threshold_hu`, if any.
    pub fn crossing(&self, threshold_hu: f32) -> Option<TracePoint> {
        self.points.iter().copied().find(|p| p.rmse_hu < threshold_hu)
    }

    /// Final sample, if any.
    pub fn last(&self) -> Option<TracePoint> {
        self.points.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::QuadraticPrior;
    use ct_core::geometry::{Geometry, ImageGrid};

    #[test]
    fn cost_of_zero_state_is_zero() {
        let g = Geometry::tiny_scale();
        let img = Image::zeros(g.grid);
        let e = Sinogram::zeros(&g);
        let w = Sinogram::filled(&g, 1.0);
        assert_eq!(cost(&img, &e, &w, &QuadraticPrior { sigma: 1.0 }), 0.0);
    }

    #[test]
    fn cost_counts_weighted_error() {
        let g = Geometry::tiny_scale();
        let img = Image::zeros(g.grid);
        let e = Sinogram::filled(&g, 2.0);
        let w = Sinogram::filled(&g, 0.5);
        let n = (g.num_views * g.num_channels) as f64;
        let c = cost(&img, &e, &w, &QuadraticPrior { sigma: 1.0 });
        assert!((c - 0.5 * 0.5 * 4.0 * n).abs() < 1e-6);
    }

    #[test]
    fn trace_crossing() {
        let grid = ImageGrid::square(4, 1.0);
        let golden = Image::zeros(grid);
        let mut t = ConvergenceTrace::default();
        let far = Image::from_vec(grid, vec![0.02; 16]); // 1000 HU off
        let near = Image::from_vec(grid, vec![0.0001; 16]); // 5 HU off
        t.record(1.0, 0.1, &far, &golden);
        t.record(2.0, 0.2, &near, &golden);
        let c = t.crossing(10.0).expect("should cross");
        assert_eq!(c.equits, 2.0);
        assert!(t.crossing(1.0).is_none());
        assert_eq!(t.last().unwrap().equits, 2.0);
    }
}

//! NH-ICD: spatially non-homogeneous ICD (Yu, Thibault, Bouman, Sauer,
//! Hsieh — the paper's reference \[10\]).
//!
//! Plain ICD spends equal effort everywhere; NH-ICD interleaves *full*
//! passes with several *partial* passes that revisit only the voxels
//! with the largest recent updates (the voxel selection criterion,
//! VSC). The paper's PSV-ICD/GPU-ICD SV-selection policies (top-20/25%
//! by update amount) are exactly this idea lifted to SuperVoxel
//! granularity — this module provides the voxel-granular original as a
//! baseline and extension.

use crate::prior::Prior;
use crate::sequential::IcdStats;
use crate::update::{update_voxel, zero_skippable, SinogramPair};
use ct_core::hu::rmse_hu;
use ct_core::image::Image;
use ct_core::sinogram::Sinogram;
use ct_core::sysmat::SystemMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// NH-ICD configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NhConfig {
    /// Fraction of voxels revisited in each partial pass.
    pub fraction: f32,
    /// Partial passes between full passes.
    pub partials_per_full: usize,
    /// Zero-skipping on full passes.
    pub zero_skip: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NhConfig {
    fn default() -> Self {
        NhConfig { fraction: 0.10, partials_per_full: 3, zero_skip: true, seed: 0 }
    }
}

/// The NH-ICD driver.
pub struct NhIcd<'a, P: Prior> {
    a: &'a SystemMatrix,
    prior: &'a P,
    weights: &'a Sinogram,
    config: NhConfig,
    image: Image,
    error: Sinogram,
    /// |delta| of each voxel's most recent update (the VSC).
    last_delta: Vec<f32>,
    stats: IcdStats,
    rounds: u64,
}

impl<'a, P: Prior> NhIcd<'a, P> {
    /// Initialize (computes `e = y - A init`).
    pub fn new(
        a: &'a SystemMatrix,
        y: &Sinogram,
        weights: &'a Sinogram,
        prior: &'a P,
        init: Image,
        config: NhConfig,
    ) -> Self {
        assert!(config.fraction > 0.0 && config.fraction <= 1.0);
        let ax = a.forward(&init);
        let mut error = y.clone();
        for (e, axv) in error.data_mut().iter_mut().zip(ax.data()) {
            *e -= axv;
        }
        let n = init.grid().num_voxels();
        NhIcd {
            a,
            prior,
            weights,
            config,
            image: init,
            error,
            last_delta: vec![0.0; n],
            stats: IcdStats::default(),
            rounds: 0,
        }
    }

    fn visit(&mut self, j: usize) {
        let col = self.a.column(j);
        let mut pair = SinogramPair { e: &mut self.error, w: self.weights };
        let delta = update_voxel(j, &mut self.image, &col, &mut pair, self.prior, true);
        self.last_delta[j] = delta.abs();
        self.stats.updates += 1;
        self.stats.total_abs_delta += delta.abs() as f64;
    }

    /// One full pass (randomized order, zero-skipping after round 0).
    pub fn full_pass(&mut self) {
        self.rounds += 1;
        let n = self.image.grid().num_voxels();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ self.rounds.wrapping_mul(0x9e3779b9));
        order.shuffle(&mut rng);
        let allow_skip = self.config.zero_skip && self.rounds > 1;
        for &j in &order {
            let j = j as usize;
            if allow_skip && zero_skippable(&self.image, j) {
                self.stats.skipped += 1;
                continue;
            }
            self.visit(j);
        }
    }

    /// One partial pass: revisit the top-`fraction` voxels by VSC.
    pub fn partial_pass(&mut self) {
        self.rounds += 1;
        let n = self.image.grid().num_voxels();
        let count = ((n as f32 * self.config.fraction).ceil() as usize).clamp(1, n);
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.sort_by(|&a, &b| {
            self.last_delta[b as usize]
                .partial_cmp(&self.last_delta[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ids.truncate(count);
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ self.rounds.wrapping_mul(0xc2b2ae35));
        ids.shuffle(&mut rng);
        for &j in &ids {
            self.visit(j as usize);
        }
    }

    /// One NH-ICD *cycle*: a full pass followed by the configured
    /// number of partial passes.
    pub fn cycle(&mut self) {
        self.full_pass();
        for _ in 0..self.config.partials_per_full {
            self.partial_pass();
        }
    }

    /// Run cycles until RMSE against `golden` drops below
    /// `threshold_hu`; checks between passes. Returns the final RMSE.
    pub fn run_to_rmse(&mut self, golden: &Image, threshold_hu: f32, max_passes: usize) -> f32 {
        let mut rmse = rmse_hu(&self.image, golden);
        let mut passes = 0usize;
        'outer: while passes < max_passes {
            if rmse < threshold_hu {
                break;
            }
            self.full_pass();
            passes += 1;
            rmse = rmse_hu(&self.image, golden);
            for _ in 0..self.config.partials_per_full {
                if rmse < threshold_hu || passes >= max_passes {
                    break 'outer;
                }
                self.partial_pass();
                passes += 1;
                rmse = rmse_hu(&self.image, golden);
            }
        }
        rmse
    }

    /// Current reconstruction.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Equits of work so far.
    pub fn equits(&self) -> f64 {
        self.stats.equits(self.image.grid().num_voxels())
    }

    /// Work counters.
    pub fn stats(&self) -> IcdStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::QggmrfPrior;
    use crate::sequential::{golden_image, IcdConfig, SequentialIcd};
    use ct_core::fbp;
    use ct_core::geometry::Geometry;
    use ct_core::phantom::Phantom;
    use ct_core::project::{scan, NoiseModel, Scan};

    fn setup() -> (Geometry, SystemMatrix, Scan) {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        // A baggage scene: sharp objects leave localized residuals —
        // NH-ICD's favourable case.
        let truth = Phantom::baggage(6).render(g.grid, 2);
        let s = scan(&a, &truth, Some(NoiseModel { i0: 1.0e5 }), 5);
        (g, a, s)
    }

    #[test]
    fn converges_to_golden() {
        let (g, a, s) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let init = fbp::reconstruct(&g, &s.y);
        let golden = golden_image(&a, &s.y, &s.weights, &prior, init.clone(), 40.0);
        let mut nh = NhIcd::new(&a, &s.y, &s.weights, &prior, init, NhConfig::default());
        let rmse = nh.run_to_rmse(&golden, 10.0, 60);
        assert!(rmse < 10.0, "rmse {rmse} after {:.1} equits", nh.equits());
    }

    #[test]
    fn uses_fewer_equits_than_plain_icd() {
        // The NH-ICD claim: focusing updates where they matter reaches
        // the same quality with less total work.
        let (g, a, s) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let init = fbp::reconstruct(&g, &s.y);
        let golden = golden_image(&a, &s.y, &s.weights, &prior, init.clone(), 40.0);

        let mut plain = SequentialIcd::new(
            &a,
            &s.y,
            &s.weights,
            &prior,
            init.clone(),
            IcdConfig { zero_skip: false, ..Default::default() },
        );
        plain.run_to_rmse(&golden, 10.0, 60);

        let mut nh = NhIcd::new(
            &a,
            &s.y,
            &s.weights,
            &prior,
            init,
            NhConfig { zero_skip: false, ..Default::default() },
        );
        nh.run_to_rmse(&golden, 10.0, 200);

        assert!(
            nh.equits() < plain.equits() * 1.05,
            "nh {:.2} equits vs plain {:.2}",
            nh.equits(),
            plain.equits()
        );
    }

    #[test]
    fn partial_passes_cost_a_fraction() {
        let (g, a, s) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let mut nh = NhIcd::new(
            &a,
            &s.y,
            &s.weights,
            &prior,
            Image::zeros(g.grid),
            NhConfig { fraction: 0.1, zero_skip: false, ..Default::default() },
        );
        nh.full_pass();
        let after_full = nh.stats().updates;
        nh.partial_pass();
        let partial = nh.stats().updates - after_full;
        let n = g.grid.num_voxels() as u64;
        assert_eq!(after_full, n);
        assert_eq!(partial, (n as f32 * 0.1).ceil() as u64);
    }

    #[test]
    fn partial_pass_targets_largest_updates() {
        let (g, a, s) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let mut nh =
            NhIcd::new(&a, &s.y, &s.weights, &prior, Image::zeros(g.grid), NhConfig::default());
        nh.full_pass();
        // The threshold VSC of the selected set, from a snapshot taken
        // before the partial pass overwrites `last_delta`.
        let pre_vsc = nh.last_delta.clone();
        let mut deltas = pre_vsc.clone();
        deltas.sort_by(|p, q| q.partial_cmp(p).unwrap());
        let count = ((g.grid.num_voxels() as f32 * nh.config.fraction).ceil()) as usize;
        let cutoff = deltas[count - 1];
        let before = nh.image().clone();
        nh.partial_pass();
        // Every voxel whose value changed was in the top-VSC set.
        let mut changed = 0usize;
        for (j, &vsc) in pre_vsc.iter().enumerate() {
            if nh.image().get(j) != before.get(j) {
                assert!(
                    vsc >= cutoff,
                    "voxel {j} changed but its VSC {vsc} is below the cutoff {cutoff}"
                );
                changed += 1;
            }
        }
        assert!(changed > 0, "the partial pass must move something");
    }

    #[test]
    fn error_invariant_holds() {
        let (_, a, s) = setup();
        let prior = QggmrfPrior::standard(0.002);
        let g = Geometry::tiny_scale();
        let mut nh =
            NhIcd::new(&a, &s.y, &s.weights, &prior, Image::zeros(g.grid), NhConfig::default());
        nh.cycle();
        let ax = a.forward(nh.image());
        for i in 0..s.y.data().len() {
            let expect = s.y.data()[i] - ax.data()[i];
            assert!((nh.error.data()[i] - expect).abs() < 2e-3);
        }
    }
}

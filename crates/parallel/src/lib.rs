//! Host-side parallel execution engine.
//!
//! The reconstruction hot paths (per-SV kernel batches, forward
//! projection, FBP) are data-parallel over *independent* work items:
//! checkerboard SVs never share boundary voxels, sinogram views and
//! image rows have disjoint outputs. This crate provides the one
//! primitive they all need — an order-preserving work-stealing
//! `par_map` — plus a process-wide thread-count knob.
//!
//! Determinism contract: `par_map(threads, n, f)` returns exactly
//! `(0..n).map(f).collect()` for every thread count, provided `f` is a
//! pure function of its index (or its side effects are on disjoint
//! state per index). Work stealing changes only *when* an item runs,
//! never *what* it computes or where its result lands, so callers that
//! reduce the returned vector in index order get bitwise-identical
//! results at any thread count.
//!
//! Thread-count resolution order: explicit [`set_threads`] call, else
//! the `MBIR_THREADS` environment variable, else
//! `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread count; 0 means "not set, resolve dynamically".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Pin the process-wide thread count. `0` restores auto-detection.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The number of worker threads parallel loops will use: the value
/// from [`set_threads`], else `MBIR_THREADS`, else the number of
/// available cores.
pub fn threads() -> usize {
    let pinned = THREADS.load(Ordering::Relaxed);
    if pinned != 0 {
        return pinned;
    }
    if let Ok(v) = std::env::var("MBIR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n != 0 {
                return n;
            }
        }
    }
    available()
}

/// Cores available to this process (at least 1).
pub fn available() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolve a caller-supplied thread request: `0` defers to the
/// process-wide setting ([`threads`]), anything else is used as-is.
pub fn resolve(requested: usize) -> usize {
    if requested == 0 {
        threads()
    } else {
        requested
    }
}

/// Shared output-slot array for [`par_map`]. Each index is written at
/// most once, by whichever worker claimed it, so handing the raw
/// pointer to every worker is race-free.
struct Slots<U>(*mut Option<U>);

unsafe impl<U: Send> Sync for Slots<U> {}

/// Map `f` over `0..n` on `threads` workers (work stealing), returning
/// results in index order. `threads == 0` defers to the process-wide
/// setting; `threads == 1` (or a single item) runs inline with no
/// thread overhead.
pub fn par_map<U, F>(threads: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = resolve(threads).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots = Slots(out.as_mut_ptr());
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let slots = &slots;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let v = f(i);
                    // Sound: index i is claimed by exactly one worker.
                    unsafe { *slots.0.add(i) = Some(v) };
                }
            });
        }
    });
    out.into_iter().map(|slot| slot.expect("worker left a slot unfilled")).collect()
}

/// Run `f` for every index in `0..n` on `threads` workers (work
/// stealing), for loops whose effects live in `f` itself (e.g. writes
/// to disjoint rows of a shared buffer). Same threading rules as
/// [`par_map`].
pub fn par_for_each<F>(threads: usize, n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = resolve(threads).min(n.max(1));
    if workers <= 1 || n <= 1 {
        (0..n).for_each(f);
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let expect: Vec<u64> = (0..103).map(|i| (i as u64) * 7 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map(threads, 103, |i| (i as u64) * 7 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn par_for_each_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        par_for_each(8, 257, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn resolve_prefers_explicit_request() {
        assert_eq!(resolve(3), 3);
        set_threads(5);
        assert_eq!(resolve(0), 5);
        set_threads(0);
        assert!(resolve(0) >= 1);
    }

    #[test]
    fn par_map_runs_nonsend_sync_captures() {
        // The closure only needs Sync; results only need Send.
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let sum: f64 = par_map(4, 50, |i| data[i] * 2.0).iter().sum();
        assert_eq!(sum, (0..50).map(|i| i as f64 * 2.0).sum());
    }
}

//! SuperVoxel buffers (SVBs).
//!
//! An SVB is a per-SV copy of the sinogram band the SV's voxels touch:
//! for each view, the union of the member voxels' channel runs. Copying
//! it out of the global sinogram linearizes the sinusoidal access
//! pattern (PPoPP 2016, Fig. 2 of the paper). Both the error and the
//! weight sinograms are buffered.
//!
//! Two layouts are supported, mirroring paper Section 4.1:
//!
//! - [`SvbLayout::SensorMajor`]: the original packed layout — each
//!   view's band stored back to back with no padding (rows start at
//!   arbitrary offsets; GPU accesses are uncoalesced).
//! - [`SvbLayout::Transposed`]: the transformed layout — one row per
//!   view, all rows padded to the same width and aligned to 32-byte
//!   boundaries ("we make the SVB perfectly rectangular by
//!   zero-padding, and place each row at an aligned address").

use crate::tiling::Tiling;
use ct_core::sinogram::Sinogram;
use ct_core::sysmat::SystemMatrix;
use mbir::update::WeightedError;

/// Floats per 32-byte alignment sector; padded row widths are rounded
/// up to this.
const ALIGN_F32: usize = 8;

/// How an SVB lays out its `(view, channel)` band in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvbLayout {
    /// Packed per-view bands, no padding (the CPU/naive-GPU layout).
    SensorMajor,
    /// Rectangular, zero-padded, 32B-aligned rows (the transformed
    /// layout of paper Fig. 4b).
    Transposed,
}

/// The geometry-static footprint of one SV's band over the sinogram.
#[derive(Debug, Clone)]
pub struct SvbShape {
    /// Per view: first channel of the band.
    pub first: Vec<u32>,
    /// Per view: band width in channels (unpadded).
    pub width: Vec<u32>,
    /// Per view: offset of the view's band in the packed layout
    /// (length `num_views + 1`).
    pub row_offset: Vec<u32>,
    /// Max band width over views, rounded up for row alignment.
    pub padded_width: usize,
}

impl SvbShape {
    /// Compute the band of SV `sv` by scanning its member voxels' runs
    /// in the system matrix.
    pub fn compute(a: &SystemMatrix, tiling: &Tiling, sv: usize) -> SvbShape {
        let nviews = a.geometry().num_views;
        let mut first = vec![u32::MAX; nviews];
        let mut last = vec![0u32; nviews];
        for j in tiling.voxels(sv) {
            let col = a.column(j);
            for v in 0..nviews {
                let (fc, n) = col.run(v);
                if n == 0 {
                    continue;
                }
                first[v] = first[v].min(fc as u32);
                last[v] = last[v].max((fc + n) as u32);
            }
        }
        let mut width = vec![0u32; nviews];
        let mut max_w = 0usize;
        for v in 0..nviews {
            if first[v] == u32::MAX {
                first[v] = 0;
            } else {
                width[v] = last[v] - first[v];
                max_w = max_w.max(width[v] as usize);
            }
        }
        let mut row_offset = Vec::with_capacity(nviews + 1);
        let mut off = 0u32;
        row_offset.push(0);
        for &w in &width {
            off += w;
            row_offset.push(off);
        }
        let padded_width = max_w.div_ceil(ALIGN_F32) * ALIGN_F32;
        SvbShape { first, width, row_offset, padded_width }
    }

    /// Compute shapes for every SV of a tiling.
    pub fn compute_all(a: &SystemMatrix, tiling: &Tiling) -> Vec<SvbShape> {
        (0..tiling.len()).map(|sv| SvbShape::compute(a, tiling, sv)).collect()
    }

    /// Number of views.
    pub fn num_views(&self) -> usize {
        self.width.len()
    }

    /// Entries in the packed layout.
    pub fn packed_len(&self) -> usize {
        *self.row_offset.last().unwrap() as usize
    }

    /// Entries in the padded rectangular layout.
    pub fn padded_len(&self) -> usize {
        self.padded_width * self.num_views()
    }

    /// Bytes of one f32 buffer in the given layout (the paper's SVB
    /// size; `e` and `w` double it).
    pub fn bytes(&self, layout: SvbLayout) -> usize {
        4 * match layout {
            SvbLayout::SensorMajor => self.packed_len(),
            SvbLayout::Transposed => self.padded_len(),
        }
    }
}

/// An SVB instance: buffered error and weight bands for one SV.
#[derive(Debug, Clone)]
pub struct Svb<'a> {
    shape: &'a SvbShape,
    layout: SvbLayout,
    /// Buffered error band (zero in padding).
    pub e: Vec<f32>,
    /// Buffered weight band (zero in padding).
    pub w: Vec<f32>,
}

impl<'a> Svb<'a> {
    /// Copy the SV's band out of the global sinograms (the paper's
    /// "create SVBs" kernel / PSV-ICD lines 11-12).
    pub fn gather(shape: &'a SvbShape, layout: SvbLayout, e: &Sinogram, w: &Sinogram) -> Svb<'a> {
        let len = match layout {
            SvbLayout::SensorMajor => shape.packed_len(),
            SvbLayout::Transposed => shape.padded_len(),
        };
        let mut be = vec![0.0f32; len];
        let mut bw = vec![0.0f32; len];
        for v in 0..shape.num_views() {
            let fc = shape.first[v] as usize;
            let wd = shape.width[v] as usize;
            let base = match layout {
                SvbLayout::SensorMajor => shape.row_offset[v] as usize,
                SvbLayout::Transposed => v * shape.padded_width,
            };
            let ev = e.view(v);
            let wv = w.view(v);
            be[base..base + wd].copy_from_slice(&ev[fc..fc + wd]);
            bw[base..base + wd].copy_from_slice(&wv[fc..fc + wd]);
        }
        Svb { shape, layout, e: be, w: bw }
    }

    /// The shape this buffer was gathered with.
    pub fn shape(&self) -> &SvbShape {
        self.shape
    }

    /// The layout in use.
    pub fn layout(&self) -> SvbLayout {
        self.layout
    }

    /// Buffer index of `(view, channel)`; `channel` is absolute.
    #[inline]
    pub fn index(&self, view: usize, ch: usize) -> usize {
        let rel = ch - self.shape.first[view] as usize;
        debug_assert!(
            rel < self.shape.width[view] as usize,
            "channel {ch} outside band at view {view}"
        );
        match self.layout {
            SvbLayout::SensorMajor => self.shape.row_offset[view] as usize + rel,
            SvbLayout::Transposed => view * self.shape.padded_width + rel,
        }
    }

    /// Add `self - orig` back into the global error sinogram (PSV-ICD
    /// lines 16-19 / the GPU-ICD write-back kernel). Additive deltas
    /// commute across SVs that share boundary sinogram cells.
    pub fn scatter_delta(&self, orig: &Svb<'_>, e: &mut Sinogram) {
        assert_eq!(self.layout, orig.layout);
        for v in 0..self.shape.num_views() {
            let fc = self.shape.first[v] as usize;
            let wd = self.shape.width[v] as usize;
            let base = match self.layout {
                SvbLayout::SensorMajor => self.shape.row_offset[v] as usize,
                SvbLayout::Transposed => v * self.shape.padded_width,
            };
            let row = e.view_mut(v);
            for k in 0..wd {
                let d = self.e[base + k] - orig.e[base + k];
                if d != 0.0 {
                    row[fc + k] += d;
                }
            }
        }
    }
}

impl WeightedError for Svb<'_> {
    #[inline]
    fn get(&self, view: usize, ch: usize) -> (f32, f32) {
        let i = self.index(view, ch);
        (self.e[i], self.w[i])
    }

    #[inline]
    fn sub(&mut self, view: usize, ch: usize, amount: f32) {
        let i = self.index(view, ch);
        self.e[i] -= amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::geometry::Geometry;
    use ct_core::image::Image;
    use ct_core::phantom::Phantom;
    use mbir::prior::QuadraticPrior;
    use mbir::update::{compute_thetas, update_voxel, SinogramPair};

    fn setup() -> (Geometry, SystemMatrix, Tiling, Sinogram, Sinogram) {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let t = Tiling::new(g.grid, 8);
        let truth = Phantom::water_cylinder(0.6).render(g.grid, 1);
        let y = a.forward(&truth);
        let w = Sinogram::filled(&g, 1.0);
        (g, a, t, y, w)
    }

    #[test]
    fn band_covers_member_runs() {
        let (g, a, t, _, _) = setup();
        for sv in 0..t.len() {
            let shape = SvbShape::compute(&a, &t, sv);
            for j in t.voxels(sv) {
                let col = a.column(j);
                for v in 0..g.num_views {
                    let (fc, n) = col.run(v);
                    if n == 0 {
                        continue;
                    }
                    assert!(fc >= shape.first[v] as usize);
                    assert!(fc + n <= (shape.first[v] + shape.width[v]) as usize);
                }
            }
        }
    }

    #[test]
    fn padded_rows_are_aligned() {
        let (_, a, t, _, _) = setup();
        let shape = SvbShape::compute(&a, &t, 0);
        assert_eq!(shape.padded_width % ALIGN_F32, 0);
        assert!(shape.padded_len() >= shape.packed_len());
    }

    #[test]
    fn gather_roundtrips_both_layouts() {
        let (g, a, t, y, w) = setup();
        let shape = SvbShape::compute(&a, &t, 4);
        for layout in [SvbLayout::SensorMajor, SvbLayout::Transposed] {
            let svb = Svb::gather(&shape, layout, &y, &w);
            for v in 0..g.num_views {
                for k in 0..shape.width[v] as usize {
                    let ch = shape.first[v] as usize + k;
                    let (e, wt) = svb.get(v, ch);
                    assert_eq!(e, y.at(v, ch));
                    assert_eq!(wt, w.at(v, ch));
                }
            }
        }
    }

    #[test]
    fn thetas_match_global_sinogram() {
        let (_, a, t, y, w) = setup();
        let sv = 4;
        let shape = SvbShape::compute(&a, &t, sv);
        let svb = Svb::gather(&shape, SvbLayout::Transposed, &y, &w);
        let mut e = y.clone();
        let pair = SinogramPair { e: &mut e, w: &w };
        for j in t.voxels(sv) {
            let col = a.column(j);
            let th_global = compute_thetas(&col, &pair);
            let th_svb = compute_thetas(&col, &svb);
            assert!((th_global.theta1 - th_svb.theta1).abs() < 1e-4);
            assert!((th_global.theta2 - th_svb.theta2).abs() < 1e-4);
        }
    }

    #[test]
    fn scatter_delta_reproduces_direct_updates() {
        // Updating voxels through an SVB and scattering the delta must
        // produce the same global error sinogram as updating directly.
        let (g, a, t, y, w) = setup();
        let sv = 4;
        let prior = QuadraticPrior { sigma: 0.05 };
        let shape = SvbShape::compute(&a, &t, sv);

        // Path 1: direct updates on the global sinogram.
        let mut img1 = Image::zeros(g.grid);
        let mut e1 = y.clone();
        {
            let mut pair = SinogramPair { e: &mut e1, w: &w };
            for j in t.voxels(sv) {
                update_voxel(j, &mut img1, &a.column(j), &mut pair, &prior, true);
            }
        }

        // Path 2: through an SVB.
        let mut img2 = Image::zeros(g.grid);
        let mut e2 = y.clone();
        let orig = Svb::gather(&shape, SvbLayout::Transposed, &e2, &w);
        let mut svb = orig.clone();
        for j in t.voxels(sv) {
            update_voxel(j, &mut img2, &a.column(j), &mut svb, &prior, true);
        }
        svb.scatter_delta(&orig, &mut e2);

        assert_eq!(img1, img2);
        for i in 0..e1.data().len() {
            assert!((e1.data()[i] - e2.data()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn scatter_outside_band_untouched() {
        let (g, a, t, y, w) = setup();
        let shape = SvbShape::compute(&a, &t, 0);
        let orig = Svb::gather(&shape, SvbLayout::SensorMajor, &y, &w);
        let mut modified = orig.clone();
        for v in modified.e.iter_mut() {
            *v += 1.0;
        }
        let mut e = y.clone();
        modified.scatter_delta(&orig, &mut e);
        // Exactly the banded cells moved by +1.
        let mut changed = 0usize;
        for v in 0..g.num_views {
            for ch in 0..g.num_channels {
                let d = e.at(v, ch) - y.at(v, ch);
                if (shape.first[v] as usize..(shape.first[v] + shape.width[v]) as usize)
                    .contains(&ch)
                {
                    assert!((d - 1.0).abs() < 1e-6);
                    changed += 1;
                } else {
                    assert_eq!(d, 0.0);
                }
            }
        }
        assert_eq!(changed, shape.packed_len());
    }

    #[test]
    fn svb_fits_l2_at_paper_scale_sides() {
        // Sanity for the paper's claim that SVBs fit the 3MB GPU L2.
        let (_, a, t, _, _) = setup();
        let shape = SvbShape::compute(&a, &t, t.len() / 2);
        assert!(shape.bytes(SvbLayout::Transposed) < 3 * 1024 * 1024);
    }
}

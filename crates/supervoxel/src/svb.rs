//! SuperVoxel buffers (SVBs).
//!
//! An SVB is a per-SV copy of the sinogram band the SV's voxels touch:
//! for each view, the union of the member voxels' channel runs. Copying
//! it out of the global sinogram linearizes the sinusoidal access
//! pattern (PPoPP 2016, Fig. 2 of the paper). Both the error and the
//! weight sinograms are buffered.
//!
//! Two layouts are supported, mirroring paper Section 4.1:
//!
//! - [`SvbLayout::SensorMajor`]: the original packed layout — each
//!   view's band stored back to back with no padding (rows start at
//!   arbitrary offsets; GPU accesses are uncoalesced).
//! - [`SvbLayout::Transposed`]: the transformed layout — one row per
//!   view, all rows padded to the same width and aligned to 32-byte
//!   boundaries ("we make the SVB perfectly rectangular by
//!   zero-padding, and place each row at an aligned address").

use std::cell::RefCell;

use crate::quant::QuantizedColumn;
use crate::tiling::Tiling;
use ct_core::sinogram::Sinogram;
use ct_core::sysmat::{ColumnView, SystemMatrix};
use mbir::update::{Thetas, WeightedError};
use mbir_simd::SimdBackend;

/// Floats per 32-byte alignment sector; padded row widths are rounded
/// up to this.
const ALIGN_F32: usize = 8;

/// How an SVB lays out its `(view, channel)` band in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvbLayout {
    /// Packed per-view bands, no padding (the CPU/naive-GPU layout).
    SensorMajor,
    /// Rectangular, zero-padded, 32B-aligned rows (the transformed
    /// layout of paper Fig. 4b).
    Transposed,
}

/// The geometry-static footprint of one SV's band over the sinogram.
#[derive(Debug, Clone)]
pub struct SvbShape {
    /// Per view: first channel of the band.
    pub first: Vec<u32>,
    /// Per view: band width in channels (unpadded).
    pub width: Vec<u32>,
    /// Per view: offset of the view's band in the packed layout
    /// (length `num_views + 1`).
    pub row_offset: Vec<u32>,
    /// Max band width over views, rounded up for row alignment.
    pub padded_width: usize,
}

impl SvbShape {
    /// Compute the band of SV `sv` by scanning its member voxels' runs
    /// in the system matrix.
    pub fn compute(a: &SystemMatrix, tiling: &Tiling, sv: usize) -> SvbShape {
        let nviews = a.geometry().num_views;
        let mut first = vec![u32::MAX; nviews];
        let mut last = vec![0u32; nviews];
        for j in tiling.voxels(sv) {
            let col = a.column(j);
            for v in 0..nviews {
                let (fc, n) = col.run(v);
                if n == 0 {
                    continue;
                }
                first[v] = first[v].min(fc as u32);
                last[v] = last[v].max((fc + n) as u32);
            }
        }
        let mut width = vec![0u32; nviews];
        let mut max_w = 0usize;
        for v in 0..nviews {
            if first[v] == u32::MAX {
                first[v] = 0;
            } else {
                width[v] = last[v] - first[v];
                max_w = max_w.max(width[v] as usize);
            }
        }
        let mut row_offset = Vec::with_capacity(nviews + 1);
        let mut off = 0u32;
        row_offset.push(0);
        for &w in &width {
            off += w;
            row_offset.push(off);
        }
        let padded_width = max_w.div_ceil(ALIGN_F32) * ALIGN_F32;
        SvbShape { first, width, row_offset, padded_width }
    }

    /// Compute shapes for every SV of a tiling.
    pub fn compute_all(a: &SystemMatrix, tiling: &Tiling) -> Vec<SvbShape> {
        (0..tiling.len()).map(|sv| SvbShape::compute(a, tiling, sv)).collect()
    }

    /// Number of views.
    pub fn num_views(&self) -> usize {
        self.width.len()
    }

    /// Entries in the packed layout.
    pub fn packed_len(&self) -> usize {
        *self.row_offset.last().unwrap() as usize
    }

    /// Entries in the padded rectangular layout.
    pub fn padded_len(&self) -> usize {
        self.padded_width * self.num_views()
    }

    /// Buffer offset of `(view, channel)` in the given layout;
    /// `channel` is absolute. The pure-shape form of [`Svb::index`],
    /// usable before any buffer is gathered (the lane tables
    /// precompute these offsets once per voxel).
    #[inline]
    pub fn index_of(&self, layout: SvbLayout, view: usize, ch: usize) -> usize {
        let rel = ch - self.first[view] as usize;
        debug_assert!(rel < self.width[view] as usize, "channel {ch} outside band at view {view}");
        match layout {
            SvbLayout::SensorMajor => self.row_offset[view] as usize + rel,
            SvbLayout::Transposed => view * self.padded_width + rel,
        }
    }

    /// Bytes of one f32 buffer in the given layout (the paper's SVB
    /// size; `e` and `w` double it).
    pub fn bytes(&self, layout: SvbLayout) -> usize {
        4 * match layout {
            SvbLayout::SensorMajor => self.packed_len(),
            SvbLayout::Transposed => self.padded_len(),
        }
    }
}

/// An SVB instance: buffered error and weight bands for one SV.
#[derive(Debug, Clone)]
pub struct Svb<'a> {
    shape: &'a SvbShape,
    layout: SvbLayout,
    /// Buffered error band (zero in padding).
    pub e: Vec<f32>,
    /// Buffered weight band (zero in padding).
    pub w: Vec<f32>,
}

impl<'a> Svb<'a> {
    /// Copy the SV's band out of the global sinograms (the paper's
    /// "create SVBs" kernel / PSV-ICD lines 11-12).
    pub fn gather(shape: &'a SvbShape, layout: SvbLayout, e: &Sinogram, w: &Sinogram) -> Svb<'a> {
        let len = match layout {
            SvbLayout::SensorMajor => shape.packed_len(),
            SvbLayout::Transposed => shape.padded_len(),
        };
        let mut be = vec![0.0f32; len];
        let mut bw = vec![0.0f32; len];
        for v in 0..shape.num_views() {
            let fc = shape.first[v] as usize;
            let wd = shape.width[v] as usize;
            let base = match layout {
                SvbLayout::SensorMajor => shape.row_offset[v] as usize,
                SvbLayout::Transposed => v * shape.padded_width,
            };
            let ev = e.view(v);
            let wv = w.view(v);
            be[base..base + wd].copy_from_slice(&ev[fc..fc + wd]);
            bw[base..base + wd].copy_from_slice(&wv[fc..fc + wd]);
        }
        Svb { shape, layout, e: be, w: bw }
    }

    /// The shape this buffer was gathered with.
    pub fn shape(&self) -> &SvbShape {
        self.shape
    }

    /// The layout in use.
    pub fn layout(&self) -> SvbLayout {
        self.layout
    }

    /// Buffer index of `(view, channel)`; `channel` is absolute.
    #[inline]
    pub fn index(&self, view: usize, ch: usize) -> usize {
        self.shape.index_of(self.layout, view, ch)
    }

    /// Add `self - orig` back into the global error sinogram (PSV-ICD
    /// lines 16-19 / the GPU-ICD write-back kernel). Additive deltas
    /// commute across SVs that share boundary sinogram cells.
    ///
    /// Scatters through [`mbir_simd::add_diff`] — one element-wise
    /// kernel shared by every backend (untouched cells add an exact
    /// `+0.0`; see `add_diff` for the zero-sign note), so the scatter
    /// is backend-invariant by construction and free to vectorize.
    pub fn scatter_delta(&self, orig: &Svb<'_>, e: &mut Sinogram) {
        assert_eq!(self.layout, orig.layout);
        for v in 0..self.shape.num_views() {
            let fc = self.shape.first[v] as usize;
            let wd = self.shape.width[v] as usize;
            let base = match self.layout {
                SvbLayout::SensorMajor => self.shape.row_offset[v] as usize,
                SvbLayout::Transposed => v * self.shape.padded_width,
            };
            let row = e.view_mut(v);
            mbir_simd::add_diff(
                &mut row[fc..fc + wd],
                &self.e[base..base + wd],
                &orig.e[base..base + wd],
            );
        }
    }

    /// Stage the error/weight entries under a voxel column's runs into
    /// flat buffers aligned with [`ColumnView::values_flat`]. Per-view
    /// runs are contiguous in both layouts, so this is a handful of
    /// `memcpy`s per view — the staging that lets the lane kernels run
    /// one long vectorized loop instead of a per-element indexed walk.
    fn stage_column(&self, col: &ColumnView<'_>, es: &mut Vec<f32>, ws: &mut Vec<f32>) {
        es.clear();
        ws.clear();
        es.reserve(col.nnz());
        ws.reserve(col.nnz());
        let first = col.first_channels();
        let count = col.counts();
        for v in 0..first.len() {
            let n = count[v] as usize;
            if n == 0 {
                continue;
            }
            let i0 = self.index(v, first[v] as usize);
            es.extend_from_slice(&self.e[i0..i0 + n]);
            ws.extend_from_slice(&self.w[i0..i0 + n]);
        }
    }

    /// Theta accumulation via a voxel's folded [`crate::LaneTables`] —
    /// the lane backend's fast path. Gathers the error band through the
    /// precomputed flat offsets (one branchless loop, no per-view
    /// bookkeeping — the weights and A entries are already folded into
    /// `t`) and runs the two-flop 8-wide kernel. Bitwise-identical to
    /// the scalar walk: the fold memoizes `(w * a)` exactly as
    /// `w * a * e` rounds it (see `mbir_simd::theta_tables_ref`), and
    /// the gather reads the same cells in the same flat order.
    pub fn thetas_tabled(&self, t: &crate::LaneTables) -> Thetas {
        STAGE.with(|s| {
            let (es, _) = &mut *s.borrow_mut();
            es.resize(t.idx.len(), 0.0);
            for (o, &i) in es.iter_mut().zip(&t.idx) {
                *o = self.e[i as usize];
            }
            let (theta1, theta2) = mbir_simd::theta_tables_lanes(&t.wa, &t.waa, es);
            Thetas { theta1, theta2 }
        })
    }

    /// Write-back via the table: `e[idx[k]] -= adq[k] * delta`, with
    /// `adq[k]` rounded at fold time exactly as the per-visit
    /// dequantization rounds — bitwise-equal to
    /// [`Svb::apply_quant_delta`] / [`Svb::apply_col_delta`], minus
    /// their per-element divides and per-view bookkeeping. A column's
    /// cells are distinct, so the scatter order is immaterial; the
    /// flat order used here is the scalar walk's order anyway.
    pub fn apply_tabled(&mut self, t: &crate::LaneTables, delta: f32) {
        for (&i, &av) in t.idx.iter().zip(&t.adq) {
            self.e[i as usize] -= av * delta;
        }
    }

    /// Theta accumulation over a voxel's column (Algorithm 1 steps
    /// 3-6), backend-dispatched. `Scalar` walks element-at-a-time
    /// through the [`WeightedError`] view (the canonical reference);
    /// `Lanes` stages the band into flat buffers and runs the chunked
    /// 8-wide kernel. Bitwise-identical results either way.
    pub fn thetas(&self, col: &ColumnView<'_>, backend: SimdBackend) -> Thetas {
        match mbir_simd::resolve(backend) {
            SimdBackend::Lanes => STAGE.with(|s| {
                let (es, ws) = &mut *s.borrow_mut();
                self.stage_column(col, es, ws);
                let (theta1, theta2) = mbir_simd::theta_flat_lanes(col.values_flat(), es, ws);
                Thetas { theta1, theta2 }
            }),
            _ => mbir::update::compute_thetas(col, self),
        }
    }

    /// Theta accumulation over a u8-quantized column (paper Section
    /// 4.3.1), backend-dispatched; dequantization stays in the
    /// canonical `code * scale / levels` per-entry order.
    pub fn thetas_quant(
        &self,
        col: &ColumnView<'_>,
        q: &QuantizedColumn,
        backend: SimdBackend,
    ) -> Thetas {
        match mbir_simd::resolve(backend) {
            SimdBackend::Lanes => STAGE.with(|s| {
                let (es, ws) = &mut *s.borrow_mut();
                self.stage_column(col, es, ws);
                let (theta1, theta2) =
                    mbir_simd::theta_quant_flat_lanes(&q.codes, q.scale, q.levels, es, ws);
                Thetas { theta1, theta2 }
            }),
            _ => {
                let first = col.first_channels();
                let count = col.counts();
                let mut acc = mbir_simd::ThetaAcc::new();
                let mut k = 0usize;
                for v in 0..first.len() {
                    let n = count[v] as usize;
                    let fc = first[v] as usize;
                    for kk in 0..n {
                        let (e, w) = self.get(v, fc + kk);
                        acc.push_quant(q.codes[k], q.scale, q.levels, e, w);
                        k += 1;
                    }
                }
                let (theta1, theta2) = acc.finish();
                Thetas { theta1, theta2 }
            }
        }
    }

    /// Scatter `e -= A * delta` over the voxel's footprint (Algorithm 1
    /// steps 9-11), backend-dispatched. The update is element-wise
    /// (`e[k] -= a[k] * delta`, no reduction), so the backends perform
    /// identical ops; `Lanes` just runs them on contiguous run slices.
    pub fn apply_col_delta(&mut self, col: &ColumnView<'_>, delta: f32, backend: SimdBackend) {
        match mbir_simd::resolve(backend) {
            SimdBackend::Lanes => {
                let first = col.first_channels();
                let count = col.counts();
                let values = col.values_flat();
                let mut off = 0usize;
                for v in 0..first.len() {
                    let n = count[v] as usize;
                    if n > 0 {
                        let i0 = self.index(v, first[v] as usize);
                        mbir_simd::sub_scaled(
                            &mut self.e[i0..i0 + n],
                            &values[off..off + n],
                            delta,
                        );
                    }
                    off += n;
                }
            }
            _ => mbir::update::apply_delta(col, self, delta),
        }
    }

    /// Quantized-column variant of [`Svb::apply_col_delta`].
    pub fn apply_quant_delta(
        &mut self,
        col: &ColumnView<'_>,
        q: &QuantizedColumn,
        delta: f32,
        backend: SimdBackend,
    ) {
        let first = col.first_channels();
        let count = col.counts();
        match mbir_simd::resolve(backend) {
            SimdBackend::Lanes => {
                let mut off = 0usize;
                for v in 0..first.len() {
                    let n = count[v] as usize;
                    if n > 0 {
                        let i0 = self.index(v, first[v] as usize);
                        mbir_simd::sub_scaled_quant(
                            &mut self.e[i0..i0 + n],
                            &q.codes[off..off + n],
                            q.scale,
                            q.levels,
                            delta,
                        );
                    }
                    off += n;
                }
            }
            _ => {
                let mut k = 0usize;
                for v in 0..first.len() {
                    let n = count[v] as usize;
                    let fc = first[v] as usize;
                    for kk in 0..n {
                        let av = q.dequant(k);
                        self.sub(v, fc + kk, av * delta);
                        k += 1;
                    }
                }
            }
        }
    }
}

thread_local! {
    /// Per-thread staging buffers for the lane backend: the (e, w)
    /// entries under one voxel column, flattened to `values_flat`
    /// order. Reused across voxel visits to keep staging allocation-free.
    static STAGE: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

impl WeightedError for Svb<'_> {
    #[inline]
    fn get(&self, view: usize, ch: usize) -> (f32, f32) {
        let i = self.index(view, ch);
        (self.e[i], self.w[i])
    }

    #[inline]
    fn sub(&mut self, view: usize, ch: usize, amount: f32) {
        let i = self.index(view, ch);
        self.e[i] -= amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::geometry::Geometry;
    use ct_core::image::Image;
    use ct_core::phantom::Phantom;
    use mbir::prior::QuadraticPrior;
    use mbir::update::{compute_thetas, update_voxel, SinogramPair};

    fn setup() -> (Geometry, SystemMatrix, Tiling, Sinogram, Sinogram) {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let t = Tiling::new(g.grid, 8);
        let truth = Phantom::water_cylinder(0.6).render(g.grid, 1);
        let y = a.forward(&truth);
        let w = Sinogram::filled(&g, 1.0);
        (g, a, t, y, w)
    }

    #[test]
    fn band_covers_member_runs() {
        let (g, a, t, _, _) = setup();
        for sv in 0..t.len() {
            let shape = SvbShape::compute(&a, &t, sv);
            for j in t.voxels(sv) {
                let col = a.column(j);
                for v in 0..g.num_views {
                    let (fc, n) = col.run(v);
                    if n == 0 {
                        continue;
                    }
                    assert!(fc >= shape.first[v] as usize);
                    assert!(fc + n <= (shape.first[v] + shape.width[v]) as usize);
                }
            }
        }
    }

    #[test]
    fn padded_rows_are_aligned() {
        let (_, a, t, _, _) = setup();
        let shape = SvbShape::compute(&a, &t, 0);
        assert_eq!(shape.padded_width % ALIGN_F32, 0);
        assert!(shape.padded_len() >= shape.packed_len());
    }

    #[test]
    fn gather_roundtrips_both_layouts() {
        let (g, a, t, y, w) = setup();
        let shape = SvbShape::compute(&a, &t, 4);
        for layout in [SvbLayout::SensorMajor, SvbLayout::Transposed] {
            let svb = Svb::gather(&shape, layout, &y, &w);
            for v in 0..g.num_views {
                for k in 0..shape.width[v] as usize {
                    let ch = shape.first[v] as usize + k;
                    let (e, wt) = svb.get(v, ch);
                    assert_eq!(e, y.at(v, ch));
                    assert_eq!(wt, w.at(v, ch));
                }
            }
        }
    }

    #[test]
    fn thetas_match_global_sinogram() {
        let (_, a, t, y, w) = setup();
        let sv = 4;
        let shape = SvbShape::compute(&a, &t, sv);
        let svb = Svb::gather(&shape, SvbLayout::Transposed, &y, &w);
        let mut e = y.clone();
        let pair = SinogramPair { e: &mut e, w: &w };
        for j in t.voxels(sv) {
            let col = a.column(j);
            let th_global = compute_thetas(&col, &pair);
            let th_svb = compute_thetas(&col, &svb);
            assert!((th_global.theta1 - th_svb.theta1).abs() < 1e-4);
            assert!((th_global.theta2 - th_svb.theta2).abs() < 1e-4);
        }
    }

    #[test]
    fn scatter_delta_reproduces_direct_updates() {
        // Updating voxels through an SVB and scattering the delta must
        // produce the same global error sinogram as updating directly.
        let (g, a, t, y, w) = setup();
        let sv = 4;
        let prior = QuadraticPrior { sigma: 0.05 };
        let shape = SvbShape::compute(&a, &t, sv);

        // Path 1: direct updates on the global sinogram.
        let mut img1 = Image::zeros(g.grid);
        let mut e1 = y.clone();
        {
            let mut pair = SinogramPair { e: &mut e1, w: &w };
            for j in t.voxels(sv) {
                update_voxel(j, &mut img1, &a.column(j), &mut pair, &prior, true);
            }
        }

        // Path 2: through an SVB.
        let mut img2 = Image::zeros(g.grid);
        let mut e2 = y.clone();
        let orig = Svb::gather(&shape, SvbLayout::Transposed, &e2, &w);
        let mut svb = orig.clone();
        for j in t.voxels(sv) {
            update_voxel(j, &mut img2, &a.column(j), &mut svb, &prior, true);
        }
        svb.scatter_delta(&orig, &mut e2);

        assert_eq!(img1, img2);
        for i in 0..e1.data().len() {
            assert!((e1.data()[i] - e2.data()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn scatter_outside_band_untouched() {
        let (g, a, t, y, w) = setup();
        let shape = SvbShape::compute(&a, &t, 0);
        let orig = Svb::gather(&shape, SvbLayout::SensorMajor, &y, &w);
        let mut modified = orig.clone();
        for v in modified.e.iter_mut() {
            *v += 1.0;
        }
        let mut e = y.clone();
        modified.scatter_delta(&orig, &mut e);
        // Exactly the banded cells moved by +1.
        let mut changed = 0usize;
        for v in 0..g.num_views {
            for ch in 0..g.num_channels {
                let d = e.at(v, ch) - y.at(v, ch);
                if (shape.first[v] as usize..(shape.first[v] + shape.width[v]) as usize)
                    .contains(&ch)
                {
                    assert!((d - 1.0).abs() < 1e-6);
                    changed += 1;
                } else {
                    assert_eq!(d, 0.0);
                }
            }
        }
        assert_eq!(changed, shape.packed_len());
    }

    #[test]
    fn theta_backends_bitwise_equal_on_real_columns() {
        let (_g, a, t, y, w) = setup();
        for layout in [SvbLayout::SensorMajor, SvbLayout::Transposed] {
            for sv in [0, 4, t.len() - 1] {
                let shape = SvbShape::compute(&a, &t, sv);
                let svb = Svb::gather(&shape, layout, &y, &w);
                for j in t.voxels(sv) {
                    let col = a.column(j);
                    let q = QuantizedColumn::quantize(&col);
                    let s = svb.thetas(&col, SimdBackend::Scalar);
                    let l = svb.thetas(&col, SimdBackend::Lanes);
                    assert_eq!(s.theta1.to_bits(), l.theta1.to_bits(), "sv {sv} voxel {j}");
                    assert_eq!(s.theta2.to_bits(), l.theta2.to_bits(), "sv {sv} voxel {j}");
                    let sq = svb.thetas_quant(&col, &q, SimdBackend::Scalar);
                    let lq = svb.thetas_quant(&col, &q, SimdBackend::Lanes);
                    assert_eq!(sq.theta1.to_bits(), lq.theta1.to_bits(), "quant sv {sv} voxel {j}");
                    assert_eq!(sq.theta2.to_bits(), lq.theta2.to_bits(), "quant sv {sv} voxel {j}");
                }
            }
        }
    }

    #[test]
    fn apply_backends_bitwise_equal_on_real_columns() {
        let (_, a, t, y, w) = setup();
        let sv = 4;
        let shape = SvbShape::compute(&a, &t, sv);
        for layout in [SvbLayout::SensorMajor, SvbLayout::Transposed] {
            let mut svb_s = Svb::gather(&shape, layout, &y, &w);
            let mut svb_l = svb_s.clone();
            for (step, j) in t.voxels(sv).enumerate() {
                let col = a.column(j);
                let q = QuantizedColumn::quantize(&col);
                let delta = 0.001 + step as f32 * 0.0007;
                if step % 2 == 0 {
                    svb_s.apply_col_delta(&col, delta, SimdBackend::Scalar);
                    svb_l.apply_col_delta(&col, delta, SimdBackend::Lanes);
                } else {
                    svb_s.apply_quant_delta(&col, &q, delta, SimdBackend::Scalar);
                    svb_l.apply_quant_delta(&col, &q, delta, SimdBackend::Lanes);
                }
            }
            let bs: Vec<u32> = svb_s.e.iter().map(|v| v.to_bits()).collect();
            let bl: Vec<u32> = svb_l.e.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bs, bl);
        }
    }

    #[test]
    fn thetas_dispatch_matches_generic_walk() {
        // The Scalar backend must be literally the generic
        // compute_thetas walk, and Lanes must equal it bitwise.
        let (_, a, t, y, w) = setup();
        let sv = 2;
        let shape = SvbShape::compute(&a, &t, sv);
        let svb = Svb::gather(&shape, SvbLayout::Transposed, &y, &w);
        for j in t.voxels(sv) {
            let col = a.column(j);
            let reference = compute_thetas(&col, &svb);
            for backend in [SimdBackend::Scalar, SimdBackend::Lanes] {
                let got = svb.thetas(&col, backend);
                assert_eq!(got.theta1.to_bits(), reference.theta1.to_bits());
                assert_eq!(got.theta2.to_bits(), reference.theta2.to_bits());
            }
        }
    }

    #[test]
    fn svb_fits_l2_at_paper_scale_sides() {
        // Sanity for the paper's claim that SVBs fit the 3MB GPU L2.
        let (_, a, t, _, _) = setup();
        let shape = SvbShape::compute(&a, &t, t.len() / 2);
        assert!(shape.bytes(SvbLayout::Transposed) < 3 * 1024 * 1024);
    }
}

//! Iteration-invariant per-SV plans.
//!
//! The paper's central amortization (Sections 4.1/4.3) is a *one-time*
//! layout transform: the SVB band shapes, the chunk decomposition, the
//! `u8`-quantized A chunks, and the coalescing behaviour of the
//! transformed layout all depend only on the system matrix and the
//! tiling — never on the image — yet a naive driver re-derives them on
//! every voxel visit of every iteration. An [`SvPlanSet`] computes all
//! of it once at driver setup (in parallel, with the deterministic
//! `mbir-parallel` engine) and is then shared by reference across
//! iterations by both the GPU-ICD and PSV-ICD drivers.
//!
//! A plan is purely a cache: every cached quantity is byte-for-byte
//! what the per-visit recomputation would produce, so cached and
//! uncached runs are bitwise identical (enforced by the
//! `plan_cache_equivalence` regression test).

use crate::chunks::chunk_column;
use crate::quant::QuantizedColumn;
use crate::svb::{SvbLayout, SvbShape};
use crate::tiling::Tiling;
use ct_core::sysmat::SystemMatrix;
use gpu_sim::coalesce::affine_transactions;

/// The iteration-invariant knobs a plan set is specialized for —
/// derived from the driver's options at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanConfig {
    /// Chunk decomposition width of the transformed layout, or `None`
    /// for the naive layout (no chunk tallies cached).
    pub chunk_width: Option<usize>,
    /// A-matrix quantization bit width, or `None` to keep f32 columns
    /// (no quantized chunks cached).
    pub quant_bits: Option<u32>,
    /// SVB layout the driver gathers with; fixes the cached byte sizes.
    pub layout: SvbLayout,
}

/// Everything about one voxel's column that iterations reuse.
#[derive(Debug, Clone)]
pub struct VoxelPlan {
    /// Linear image index of the voxel.
    pub voxel: usize,
    /// Column entries (dot-product length of one visit).
    pub nnz: u32,
    /// Dense elements the transformed kernel streams for this voxel:
    /// the summed chunk areas when chunking, else `nnz`.
    pub dense: u64,
    /// Chunk descriptors read per visit (chunk count when chunking,
    /// else the view count).
    pub descriptors: u32,
    /// `sum A^2` of the column (`SystemMatrix::column_norm_sq`).
    pub norm_sq: f32,
    /// The column quantized once, replacing the two per-visit
    /// `quantize_bits` calls (theta accumulation + write-back).
    pub quant: Option<QuantizedColumn>,
}

/// Warp transaction counts for streaming one row of the transformed
/// per-SV data, precomputed from the closed-form coalescer. These are
/// properties of the padded layout alone — the whole point of the
/// transform is that they stay small and fixed across iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowTransactions {
    /// Transactions for one padded SVB error row read as f64 pairs.
    pub e_row: u32,
    /// Transactions for one padded SVB weight row read as f32.
    pub w_row: u32,
    /// Transactions for one A-chunk row (`chunk_width` lanes) at the
    /// quantized (u8) or full (f32) element width.
    pub a_row: u32,
}

/// One SuperVoxel's immutable plan.
#[derive(Debug, Clone)]
pub struct SvPlan {
    /// SV id within the tiling.
    pub sv: usize,
    /// The SV's band shape over the sinogram.
    pub shape: SvbShape,
    /// Per-voxel cached state, in `tiling.voxels(sv)` order.
    pub voxels: Vec<VoxelPlan>,
    /// One f32 buffer's bytes in the configured layout
    /// (`shape.bytes(config.layout)`).
    pub svb_bytes: f64,
    /// Mean band width in channels over views.
    pub band_width: f64,
    /// Coalescing transaction counts of the SV's padded rows (only
    /// when chunking; the naive layout has no fixed row shape).
    pub row_tx: Option<RowTransactions>,
}

impl SvPlan {
    /// Build the plan for one SV.
    pub fn build(a: &SystemMatrix, tiling: &Tiling, sv: usize, config: PlanConfig) -> SvPlan {
        let shape = SvbShape::compute(a, tiling, sv);
        let nviews = shape.num_views();
        let svb_bytes = shape.bytes(config.layout) as f64;
        let band_width = shape.width.iter().map(|&w| w as f64).sum::<f64>() / nviews.max(1) as f64;
        let voxels = tiling
            .voxels(sv)
            .map(|j| {
                let col = a.column(j);
                let (dense, descriptors) = match config.chunk_width {
                    Some(w) => {
                        let chunks = chunk_column(&col, w);
                        (chunks.iter().map(|c| c.len() as u64).sum(), chunks.len() as u32)
                    }
                    None => (col.nnz() as u64, nviews as u32),
                };
                VoxelPlan {
                    voxel: j,
                    nnz: col.nnz() as u32,
                    dense,
                    descriptors,
                    norm_sq: col.values_flat().iter().map(|&v| v * v).sum(),
                    quant: config.quant_bits.map(|bits| QuantizedColumn::quantize_bits(&col, bits)),
                }
            })
            .collect();
        let row_tx = config.chunk_width.map(|w| {
            let a_bytes = if config.quant_bits.is_some() { 1 } else { 4 };
            RowTransactions {
                e_row: affine_transactions(0, 8, 8, (shape.padded_width / 2).max(1) as u32),
                w_row: affine_transactions(0, 4, 4, shape.padded_width.max(1) as u32),
                a_row: affine_transactions(0, a_bytes, a_bytes, w as u32),
            }
        });
        SvPlan { sv, shape, voxels, svb_bytes, band_width, row_tx }
    }

    /// Per-voxel plans, in `tiling.voxels(sv)` order.
    pub fn voxels(&self) -> &[VoxelPlan] {
        &self.voxels
    }
}

/// The full set of per-SV plans for one tiling — built once at driver
/// setup, shared by reference across iterations.
#[derive(Debug, Clone)]
pub struct SvPlanSet {
    config: PlanConfig,
    tiling: Tiling,
    plans: Vec<SvPlan>,
}

impl SvPlanSet {
    /// Build every SV's plan in parallel on `threads` workers (0 = all
    /// available). `mbir_parallel::par_map` preserves SV order, so the
    /// result is identical at any thread count.
    pub fn build(a: &SystemMatrix, tiling: &Tiling, config: PlanConfig, threads: usize) -> Self {
        let plans = mbir_parallel::par_map(threads, tiling.len(), |sv| {
            SvPlan::build(a, tiling, sv, config)
        });
        SvPlanSet { config, tiling: tiling.clone(), plans }
    }

    /// The configuration the plans were specialized for.
    pub fn config(&self) -> PlanConfig {
        self.config
    }

    /// The tiling the plans cover.
    pub fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    /// All plans, indexed by SV id.
    pub fn plans(&self) -> &[SvPlan] {
        &self.plans
    }

    /// One SV's plan.
    pub fn plan(&self, sv: usize) -> &SvPlan {
        &self.plans[sv]
    }

    /// Approximate resident bytes of the cached state (diagnostics).
    pub fn bytes(&self) -> usize {
        self.plans
            .iter()
            .map(|p| {
                let shape =
                    4 * (p.shape.first.len() + p.shape.width.len()) + 4 * p.shape.row_offset.len();
                let vox: usize = p
                    .voxels
                    .iter()
                    .map(|v| {
                        std::mem::size_of::<VoxelPlan>() + v.quant.as_ref().map_or(0, |q| q.bytes())
                    })
                    .sum();
                shape + vox
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::geometry::Geometry;
    use gpu_sim::coalesce::transactions;

    fn setup() -> (Geometry, SystemMatrix, Tiling) {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let t = Tiling::new(g.grid, 8);
        (g, a, t)
    }

    fn chunked_config() -> PlanConfig {
        PlanConfig { chunk_width: Some(16), quant_bits: Some(8), layout: SvbLayout::Transposed }
    }

    #[test]
    fn cached_tallies_match_fresh_recomputation() {
        let (_, a, t) = setup();
        let config = chunked_config();
        let set = SvPlanSet::build(&a, &t, config, 1);
        for sv in [0usize, t.len() / 2, t.len() - 1] {
            let plan = set.plan(sv);
            let fresh_shape = SvbShape::compute(&a, &t, sv);
            assert_eq!(plan.shape.first, fresh_shape.first);
            assert_eq!(plan.shape.width, fresh_shape.width);
            assert_eq!(plan.svb_bytes, fresh_shape.bytes(config.layout) as f64);
            for (vp, j) in plan.voxels().iter().zip(t.voxels(sv)) {
                assert_eq!(vp.voxel, j);
                let col = a.column(j);
                assert_eq!(vp.nnz as usize, col.nnz());
                let chunks = chunk_column(&col, 16);
                assert_eq!(vp.dense, chunks.iter().map(|c| c.len() as u64).sum::<u64>());
                assert_eq!(vp.descriptors as usize, chunks.len());
                assert_eq!(vp.norm_sq, a.column_norm_sq(j));
                let q = vp.quant.as_ref().expect("quantized plan");
                let fresh_q = QuantizedColumn::quantize_bits(&col, 8);
                assert_eq!(q.scale, fresh_q.scale);
                assert_eq!(q.codes, fresh_q.codes);
            }
        }
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let (_, a, t) = setup();
        let config = chunked_config();
        let s1 = SvPlanSet::build(&a, &t, config, 1);
        let s8 = SvPlanSet::build(&a, &t, config, 8);
        assert_eq!(s1.plans().len(), s8.plans().len());
        for (p1, p8) in s1.plans().iter().zip(s8.plans()) {
            assert_eq!(p1.sv, p8.sv);
            assert_eq!(p1.shape.first, p8.shape.first);
            assert_eq!(p1.svb_bytes, p8.svb_bytes);
            assert_eq!(p1.band_width, p8.band_width);
            for (v1, v8) in p1.voxels().iter().zip(p8.voxels()) {
                assert_eq!(v1.voxel, v8.voxel);
                assert_eq!(v1.dense, v8.dense);
                assert_eq!(
                    v1.quant.as_ref().map(|q| &q.codes),
                    v8.quant.as_ref().map(|q| &q.codes)
                );
            }
        }
    }

    #[test]
    fn naive_config_caches_view_tallies() {
        let (g, a, t) = setup();
        let set = SvPlanSet::build(
            &a,
            &t,
            PlanConfig { chunk_width: None, quant_bits: None, layout: SvbLayout::SensorMajor },
            0,
        );
        let plan = set.plan(1);
        assert!(plan.row_tx.is_none());
        for vp in plan.voxels() {
            assert_eq!(vp.dense, vp.nnz as u64);
            assert_eq!(vp.descriptors as usize, g.num_views);
            assert!(vp.quant.is_none());
        }
    }

    #[test]
    fn row_transactions_match_materialized_addresses() {
        let (_, a, t) = setup();
        let set = SvPlanSet::build(&a, &t, chunked_config(), 0);
        for sv in [0usize, t.len() - 1] {
            let plan = set.plan(sv);
            let tx = plan.row_tx.expect("chunked plan has row transactions");
            let pw = plan.shape.padded_width;
            // e row: padded_width/2 lanes of f64 pairs.
            let e_addrs: Vec<u64> = (0..(pw / 2).max(1) as u64).map(|i| i * 8).collect();
            assert_eq!(tx.e_row, transactions(&e_addrs, 8));
            // w row: padded_width lanes of f32.
            let w_addrs: Vec<u64> = (0..pw.max(1) as u64).map(|i| i * 4).collect();
            assert_eq!(tx.w_row, transactions(&w_addrs, 4));
            // A chunk row: chunk_width lanes of u8.
            let a_addrs: Vec<u64> = (0..16u64).collect();
            assert_eq!(tx.a_row, transactions(&a_addrs, 1));
        }
    }

    #[test]
    fn plan_bytes_accounts_quantized_columns() {
        let (_, a, t) = setup();
        let quant = SvPlanSet::build(&a, &t, chunked_config(), 0);
        let plain = SvPlanSet::build(
            &a,
            &t,
            PlanConfig { chunk_width: Some(16), quant_bits: None, layout: SvbLayout::Transposed },
            0,
        );
        assert!(quant.bytes() > plain.bytes());
    }
}

//! SuperVoxel machinery (PPoPP 2016's PSV-ICD data structures, plus the
//! GPU-oriented transformations of the PPoPP 2017 paper's Section 4).
//!
//! - [`tiling`]: partition the image into square SuperVoxels (SVs) with
//!   shared boundary voxels, and map voxels to SVs.
//! - [`svb`]: SuperVoxel buffers (SVBs) — per-SV copies of the error
//!   and weight sinogram bands, in the original sensor-major layout or
//!   the transposed/zero-padded layout of paper Fig. 4b, with
//!   gather/scatter against the global sinogram.
//! - [`chunks`]: the per-voxel chunk decomposition of the transformed
//!   layout (rectangular `(views x chunk_width)` blocks with zero-padded
//!   A-matrix chunks) that produces coalesced accesses.
//! - [`quant`]: the paper's Section 4.3.1 A-matrix compression to
//!   `u8` with a per-voxel normalization scale.
//! - [`checkerboard`]: the 4-group checkerboard partition that keeps
//!   concurrently updated SVs from sharing boundary voxels.
//! - [`selection`]: the per-iteration SV working-set policies (all /
//!   top-f% by update amount / random f%).
//! - [`plan`]: iteration-invariant per-SV plans — shapes, chunk
//!   tallies, quantized columns, column norms, and row coalescing
//!   counts computed once at driver setup and shared across
//!   iterations.

#![warn(missing_docs)]

pub mod checkerboard;
pub mod chunks;
pub mod lanes;
pub mod plan;
pub mod quant;
pub mod selection;
pub mod svb;
pub mod tiling;

pub use checkerboard::checkerboard_groups;
pub use chunks::{chunk_column, Chunk, PaddedColumn};
pub use lanes::LaneTables;
pub use plan::{PlanConfig, RowTransactions, SvPlan, SvPlanSet, VoxelPlan};
pub use quant::QuantizedColumn;
pub use selection::{select_svs, Selection};
pub use svb::{Svb, SvbLayout, SvbShape};
pub use tiling::{SuperVoxel, Tiling};

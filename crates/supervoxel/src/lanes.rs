//! One-time folded tables for the SIMD lane backend's ICD inner loop.
//!
//! The theta accumulation (Algorithm 1 steps 3-6) folds three streams
//! per element: `theta1 -= w * A * e`, `theta2 += w * A * A`. Of those,
//! only `e` changes between voxel visits — the weights and the system
//! matrix are iteration-invariant, and on the default quantized path
//! the dequantization `code as f32 * scale / levels` costs a divide
//! per element per visit. On top of that, the run-major walk pays
//! per-view bookkeeping (band indexing, run slicing) for runs that
//! average only ~2-3 channels, which is where a naive staged lane
//! path loses its vector win. A [`LaneTables`] folds everything
//! invariant once at driver setup:
//!
//! - `wa[k] = w[k] * a[k]` — the weighted A entry,
//! - `waa[k] = (w[k] * a[k]) * a[k]` — its theta2 contribution,
//! - `adq[k] = a[k]` — the (dequantized) A entry, for the write-back
//!   `e[k] -= a[k] * delta`,
//! - `idx[k]` — the element's offset in the SV's buffered band, which
//!   depends only on the band shape and layout,
//!
//! so a visit is two branchless element-wise loops: gather `e` by
//! `idx` and run the two-flop 8-wide theta kernel, then scatter the
//! committed delta back through the same offsets.
//!
//! The fold is bitwise-neutral: Rust parses `w * a * e` as
//! `(w * a) * e`, so memoizing the rounded product `w * a` (with the
//! canonical dequantization already applied) leaves every per-element
//! expression tree of the scalar reference walk unchanged — pinned by
//! the `theta_tables_*` proptests in `mbir-simd` and end-to-end by
//! `tests/determinism_simd.rs`.

use crate::plan::SvPlanSet;
use crate::quant::QuantizedColumn;
use crate::svb::{SvbLayout, SvbShape};
use ct_core::sinogram::Sinogram;
use ct_core::sysmat::{ColumnView, SystemMatrix};

/// Per-voxel folded tables, in `values_flat` element order, bound to
/// one SV band shape and layout (the `idx` offsets).
#[derive(Debug, Clone, Default)]
pub struct LaneTables {
    /// `w * a` per element (dequantized `a` for quantized columns).
    pub wa: Vec<f32>,
    /// `(w * a) * a` per element — the theta2 summand.
    pub waa: Vec<f32>,
    /// The A entry per element, exactly as the per-visit walk sees it:
    /// dequantized in canonical order for quantized columns, the raw
    /// `values_flat` entry otherwise.
    pub adq: Vec<f32>,
    /// Offset of the element in the SV's buffered band.
    pub idx: Vec<u32>,
}

impl LaneTables {
    /// Fold one column against the weight sinogram and its SV's band
    /// geometry. `quant` carries the quantized codes when the driver
    /// runs the u8 A-matrix path.
    pub fn build(
        col: &ColumnView<'_>,
        quant: Option<&QuantizedColumn>,
        w: &Sinogram,
        shape: &SvbShape,
        layout: SvbLayout,
    ) -> LaneTables {
        let values = col.values_flat();
        let n = values.len();
        let mut t = LaneTables {
            wa: Vec::with_capacity(n),
            waa: Vec::with_capacity(n),
            adq: Vec::with_capacity(n),
            idx: Vec::with_capacity(n),
        };
        let mut k = 0usize;
        for v in 0..col.num_views() {
            let (fc, run) = col.run(v);
            let wv = w.view(v);
            for kk in 0..run {
                let a = match quant {
                    Some(q) => q.dequant(k),
                    None => values[k],
                };
                let wa = wv[fc + kk] * a;
                t.wa.push(wa);
                t.waa.push(wa * a);
                t.adq.push(a);
                t.idx.push(shape.index_of(layout, v, fc + kk) as u32);
                k += 1;
            }
        }
        t
    }

    /// Fold every voxel of a plan set's tiling, in parallel on
    /// `threads` workers (0 = all; deterministic — per-SV folds are
    /// independent and `par_map` preserves SV order). `quant_bits`
    /// mirrors the driver's A-matrix mode; `layout` must match the
    /// layout the driver gathers SVBs with.
    ///
    /// Indexed `[sv][vi]` with `vi` the voxel's position in
    /// `plan.plan(sv).voxels()` — NOT by linear voxel id: adjacent SVs
    /// share boundary voxels, and a shared voxel's `idx` offsets are
    /// relative to the band shape of the SV visiting it, so one voxel
    /// needs a distinct fold per covering SV.
    pub fn build_for_plan(
        a: &SystemMatrix,
        w: &Sinogram,
        quant_bits: Option<u32>,
        plan: &SvPlanSet,
        layout: SvbLayout,
        threads: usize,
    ) -> Vec<Vec<LaneTables>> {
        mbir_parallel::par_map(threads, plan.plans().len(), |sv| {
            let sp = plan.plan(sv);
            sp.voxels()
                .iter()
                .map(|vp| {
                    let col = a.column(vp.voxel);
                    let fresh;
                    let quant = match quant_bits {
                        Some(bits) => Some(match &vp.quant {
                            Some(q) => q,
                            None => {
                                fresh = QuantizedColumn::quantize_bits(&col, bits);
                                &fresh
                            }
                        }),
                        None => None,
                    };
                    LaneTables::build(&col, quant, w, &sp.shape, layout)
                })
                .collect()
        })
    }

    /// Elements in the fold.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Whether the fold is empty (a voxel with no footprint).
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Resident bytes of this voxel's tables.
    pub fn bytes(&self) -> usize {
        4 * (self.wa.len() + self.waa.len() + self.adq.len() + self.idx.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanConfig;
    use crate::svb::Svb;
    use crate::tiling::Tiling;
    use ct_core::geometry::Geometry;
    use ct_core::phantom::Phantom;

    fn setup() -> (Geometry, SystemMatrix, Tiling, Sinogram, Sinogram) {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let t = Tiling::new(g.grid, 8);
        let truth = Phantom::water_cylinder(0.6).render(g.grid, 1);
        let y = a.forward(&truth);
        let mut w = Sinogram::filled(&g, 1.0);
        for v in 0..g.num_views {
            for (c, val) in w.view_mut(v).iter_mut().enumerate() {
                *val = 0.5 + ((v * 31 + c * 7) % 13) as f32 * 0.1;
            }
        }
        (g, a, t, y, w)
    }

    fn plan_for(
        a: &SystemMatrix,
        t: &Tiling,
        quant_bits: Option<u32>,
        layout: SvbLayout,
    ) -> SvPlanSet {
        SvPlanSet::build(a, t, PlanConfig { chunk_width: None, quant_bits, layout }, 1)
    }

    #[test]
    fn tabled_thetas_match_scalar_walk_bitwise() {
        let (_, a, t, y, w) = setup();
        let layout = SvbLayout::Transposed;
        let plan = plan_for(&a, &t, None, layout);
        let tables = LaneTables::build_for_plan(&a, &w, None, &plan, layout, 1);
        for (sv, sv_tables) in tables.iter().enumerate() {
            let svb = Svb::gather(&plan.plan(sv).shape, layout, &y, &w);
            for (vi, j) in t.voxels(sv).enumerate() {
                let col = a.column(j);
                let reference = svb.thetas(&col, mbir_simd::SimdBackend::Scalar);
                let tabled = svb.thetas_tabled(&sv_tables[vi]);
                assert_eq!(reference.theta1.to_bits(), tabled.theta1.to_bits(), "voxel {j}");
                assert_eq!(reference.theta2.to_bits(), tabled.theta2.to_bits(), "voxel {j}");
            }
        }
    }

    #[test]
    fn tabled_quant_thetas_and_apply_match_scalar_walk_bitwise() {
        let (_, a, t, y, w) = setup();
        let layout = SvbLayout::SensorMajor;
        let plan = plan_for(&a, &t, Some(8), layout);
        let tables = LaneTables::build_for_plan(&a, &w, Some(8), &plan, layout, 1);
        let sv = t.len() / 2;
        let mut svb = Svb::gather(&plan.plan(sv).shape, layout, &y, &w);
        let mut svb_ref = svb.clone();
        for (vi, j) in t.voxels(sv).enumerate() {
            let col = a.column(j);
            let q = QuantizedColumn::quantize_bits(&col, 8);
            let reference = svb_ref.thetas_quant(&col, &q, mbir_simd::SimdBackend::Scalar);
            let tabled = svb.thetas_tabled(&tables[sv][vi]);
            assert_eq!(reference.theta1.to_bits(), tabled.theta1.to_bits(), "voxel {j}");
            assert_eq!(reference.theta2.to_bits(), tabled.theta2.to_bits(), "voxel {j}");
            let delta = 0.001 + (j % 5) as f32 * 1e-4;
            svb_ref.apply_quant_delta(&col, &q, delta, mbir_simd::SimdBackend::Scalar);
            svb.apply_tabled(&tables[sv][vi], delta);
            let eb: Vec<u32> = svb.e.iter().map(|x| x.to_bits()).collect();
            let rb: Vec<u32> = svb_ref.e.iter().map(|x| x.to_bits()).collect();
            assert_eq!(eb, rb, "voxel {j} write-back");
        }
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let (_, a, t, _, w) = setup();
        let layout = SvbLayout::Transposed;
        let plan = plan_for(&a, &t, Some(8), layout);
        let t1 = LaneTables::build_for_plan(&a, &w, Some(8), &plan, layout, 1);
        let t4 = LaneTables::build_for_plan(&a, &w, Some(8), &plan, layout, 4);
        assert_eq!(t1.len(), t4.len());
        for (sv1, sv4) in t1.iter().zip(&t4) {
            assert_eq!(sv1.len(), sv4.len());
            for (x, y) in sv1.iter().zip(sv4) {
                assert_eq!(x.wa, y.wa);
                assert_eq!(x.waa, y.waa);
                assert_eq!(x.adq, y.adq);
                assert_eq!(x.idx, y.idx);
            }
        }
    }
}

//! A-matrix compression to `unsigned char` (paper Section 4.3.1).
//!
//! Each entry is normalized by the voxel column's maximum and mapped to
//! 8 bits with rounding:
//!
//! ```text
//! code = (u8)((A / max_A_of_voxel) * 255 + 0.5)
//! ```
//!
//! The per-voxel maximum is stored alongside and multiplied back before
//! use. This quarters the A-matrix stream (the dominant memory traffic)
//! at a quantization error bounded by `max_A / 510` per entry.

use ct_core::sysmat::ColumnView;

/// One voxel's column quantized to bytes.
#[derive(Debug, Clone)]
pub struct QuantizedColumn {
    /// The per-voxel normalization maximum.
    pub scale: f32,
    /// Quantization levels (`2^bits - 1`; 255 for the paper's u8).
    pub levels: f32,
    /// Quantized codes, in the same flat order as
    /// [`ColumnView::values_flat`].
    pub codes: Vec<u8>,
}

impl QuantizedColumn {
    /// Quantize a column to 8 bits (the paper's scheme).
    pub fn quantize(col: &ColumnView<'_>) -> QuantizedColumn {
        Self::quantize_bits(col, 8)
    }

    /// Quantize a column to `bits` in `1..=8` (levels stored in a byte;
    /// used by the bit-width ablation to show 8 bits is enough).
    pub fn quantize_bits(col: &ColumnView<'_>, bits: u32) -> QuantizedColumn {
        Self::from_values(col.values_flat(), col.max_value(), bits)
    }

    /// Quantize raw `values` against `scale` at `bits`, with the edge
    /// cases pinned down: a zero, negative, or non-finite scale
    /// quantizes everything to code 0 (and stores scale 0.0, so
    /// dequantization yields exactly 0.0 rather than NaN), and every
    /// code is explicitly clamped to `[0, levels]` so a value above
    /// `scale` — or a NaN, which maps to 0 — cannot land outside the
    /// code range. A scale large enough that `levels * scale`
    /// overflows f32 is degenerate too: the canonical dequantization
    /// multiplies before dividing (the order the SIMD paths pin
    /// bitwise), so such a scale would decode top codes to infinity.
    pub fn from_values(values: &[f32], scale: f32, bits: u32) -> QuantizedColumn {
        assert!((1..=8).contains(&bits));
        let levels = ((1u32 << bits) - 1) as f32;
        let overflows = (scale as f64) * (levels as f64) > f32::MAX as f64;
        if !(scale.is_finite() && scale > 0.0) || overflows {
            return QuantizedColumn { scale: 0.0, levels, codes: vec![0u8; values.len()] };
        }
        let codes = values
            .iter()
            .map(|&a| {
                let code = (a / scale) * levels + 0.5;
                if code.is_nan() {
                    0
                } else {
                    code.clamp(0.0, levels) as u8
                }
            })
            .collect();
        QuantizedColumn { scale, levels, codes }
    }

    /// Dequantize entry `k` back to a float A value.
    #[inline]
    pub fn dequant(&self, k: usize) -> f32 {
        self.codes[k] as f32 * self.scale / self.levels
    }

    /// Dequantize the whole column.
    pub fn dequantize_all(&self) -> Vec<f32> {
        (0..self.codes.len()).map(|k| self.dequant(k)).collect()
    }

    /// Worst-case absolute error of this quantization (half a step).
    pub fn error_bound(&self) -> f32 {
        self.scale / (2.0 * self.levels)
    }

    /// Bytes of the quantized representation (codes + scale).
    pub fn bytes(&self) -> usize {
        self.codes.len() + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::geometry::Geometry;
    use ct_core::sysmat::SystemMatrix;

    #[test]
    fn roundtrip_error_within_bound() {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        for j in (0..g.grid.num_voxels()).step_by(53) {
            let col = a.column(j);
            let q = QuantizedColumn::quantize(&col);
            let bound = q.error_bound() + 1e-7;
            for (k, &orig) in col.values_flat().iter().enumerate() {
                let err = (q.dequant(k) - orig).abs();
                assert!(err <= bound, "voxel {j} entry {k}: err {err} > bound {bound}");
            }
        }
    }

    #[test]
    fn max_maps_to_255() {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let col = a.column(g.grid.num_voxels() / 2);
        let q = QuantizedColumn::quantize(&col);
        assert_eq!(*q.codes.iter().max().unwrap(), 255);
    }

    #[test]
    fn compression_is_4x_minus_scale() {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let col = a.column(10);
        let q = QuantizedColumn::quantize(&col);
        assert_eq!(q.bytes(), col.nnz() + 4);
        assert!(q.bytes() * 3 < col.nnz() * 4);
    }

    #[test]
    fn zero_column_is_safe() {
        // A detector-clipped voxel with an all-zero column must not
        // divide by zero.
        let q = QuantizedColumn { scale: 0.0, levels: 255.0, codes: vec![0; 4] };
        assert_eq!(q.dequant(2), 0.0);
    }

    #[test]
    fn fewer_bits_mean_larger_error() {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let col = a.column(g.grid.num_voxels() / 2);
        let mut prev_bound = 0.0f32;
        for bits in (2..=8).rev() {
            let q = QuantizedColumn::quantize_bits(&col, bits);
            let bound = q.error_bound() + 1e-7;
            assert!(bound > prev_bound, "bound must grow as bits shrink");
            prev_bound = q.error_bound();
            for (k, &orig) in col.values_flat().iter().enumerate() {
                assert!((q.dequant(k) - orig).abs() <= bound, "bits {bits} entry {k}");
            }
        }
    }

    #[test]
    fn max_code_matches_bit_width() {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let col = a.column(g.grid.num_voxels() / 2);
        for bits in [2u32, 4, 6, 8] {
            let q = QuantizedColumn::quantize_bits(&col, bits);
            assert_eq!(*q.codes.iter().max().unwrap() as u32, (1 << bits) - 1);
        }
    }

    #[test]
    fn degenerate_scales_quantize_to_zero() {
        for scale in [0.0f32, -1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let q = QuantizedColumn::from_values(&[0.5, 1.0, 2.0], scale, 8);
            assert!(q.codes.iter().all(|&c| c == 0), "scale {scale}");
            assert_eq!(q.scale, 0.0);
            assert_eq!(q.dequantize_all(), vec![0.0; 3], "scale {scale}");
        }
    }

    #[test]
    fn overflowing_scale_is_degenerate_not_infinite() {
        // Regression (found by fuzz_quantizer): a finite scale near
        // f32::MAX made the canonical dequantization `code * scale /
        // levels` overflow to inf at the multiply. Such scales now
        // join the degenerate bucket instead of decoding to infinity.
        for bits in [1u32, 3, 8] {
            let levels = ((1u32 << bits) - 1) as f32;
            let scale = 1.701_437_6e38_f32; // > f32::MAX / levels for bits >= 2
            let q = QuantizedColumn::from_values(&[scale, scale / 2.0], scale, bits);
            let deq = q.dequantize_all();
            assert!(deq.iter().all(|v| v.is_finite()), "bits {bits}: {deq:?}");
            if (scale as f64) * (levels as f64) > f32::MAX as f64 {
                assert_eq!(q.scale, 0.0, "bits {bits}");
            }
        }
        // A scale that fits stays exact: top code decodes finite.
        let q = QuantizedColumn::from_values(&[1.0], 1.0, 8);
        assert!(q.dequant(0).is_finite() && q.scale == 1.0);
    }

    #[test]
    fn out_of_range_values_clamp_into_the_code_range() {
        // Values above the scale (callers lying about the max) and NaN
        // entries must land on a valid code, not wrap.
        let q = QuantizedColumn::from_values(&[-3.0, 0.0, 5.0, 1e30, f32::NAN], 1.0, 4);
        assert_eq!(q.codes, vec![0, 0, 15, 15, 0]);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn roundtrip_bound_holds_for_arbitrary_columns(
                values in prop::collection::vec(0.0f32..1e4, 1..64),
                bits in 1u32..=8,
            ) {
                let scale = values.iter().cloned().fold(0.0f32, f32::max);
                let q = QuantizedColumn::from_values(&values, scale, bits);
                let bound = q.error_bound() + scale * 1e-6;
                for (k, &orig) in values.iter().enumerate() {
                    let err = (q.dequant(k) - orig).abs();
                    prop_assert!(
                        err <= bound,
                        "entry {} @ {} bits: err {} > bound {}",
                        k, bits, err, bound
                    );
                }
            }
        }
    }

    #[test]
    fn relative_error_small_for_large_entries() {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        let col = a.column(g.grid.num_voxels() / 2 + 3);
        let q = QuantizedColumn::quantize(&col);
        for (k, &orig) in col.values_flat().iter().enumerate() {
            if orig > 0.5 * q.scale {
                let rel = (q.dequant(k) - orig).abs() / orig;
                assert!(rel < 0.005, "rel err {rel}");
            }
        }
    }
}

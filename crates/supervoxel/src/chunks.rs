//! The chunk decomposition of paper Section 4.1.
//!
//! In the transformed layout, each voxel's SVB data is split into
//! *chunks*: rectangular `(height views) x (chunk_width channels)`
//! windows chosen so that every covered view's channel run lies inside
//! the window. The A-matrix is zero-padded to the same rectangles so a
//! warp can read whole rows of the SVB and A chunks with perfectly
//! coalesced, element-by-element multiplies — padding entries are zero
//! in A and therefore never affect the result.

use ct_core::sysmat::ColumnView;

/// One rectangular chunk of a voxel's footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First view covered.
    pub view0: u32,
    /// Number of consecutive views covered.
    pub height: u32,
    /// First (absolute) channel of the window.
    pub ch0: u32,
    /// Window width in channels (the tuning parameter of Fig. 6).
    pub width: u32,
}

impl Chunk {
    /// Dense elements in the chunk (`height * width`).
    pub fn len(&self) -> usize {
        self.height as usize * self.width as usize
    }

    /// Whether the chunk is empty (never produced by `chunk_column`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Greedily decompose a voxel's column into chunks of the given width.
///
/// Views with empty runs (detector-clipped) break chunks. The window is
/// centered on the first covered view's run and extended downward
/// while subsequent runs stay inside it — the sinusoidal drift
/// eventually forces a new chunk.
pub fn chunk_column(col: &ColumnView<'_>, width: usize) -> Vec<Chunk> {
    assert!(width >= 1);
    let nviews = col.num_views();
    let mut chunks = Vec::new();
    let mut v = 0usize;
    while v < nviews {
        let (fc, n) = col.run(v);
        if n == 0 {
            v += 1;
            continue;
        }
        assert!(n <= width, "run of {n} channels cannot fit a chunk of width {width}");
        // Center the window on this first run, leaving slack on both
        // sides for the sinusoid to drift.
        let slack = width - n;
        let ch0 = fc.saturating_sub(slack / 2);
        let ch1 = ch0 + width;
        let view0 = v;
        let mut height = 0u32;
        while v < nviews {
            let (fc, n) = col.run(v);
            if n == 0 || fc < ch0 || fc + n > ch1 {
                break;
            }
            height += 1;
            v += 1;
        }
        chunks.push(Chunk { view0: view0 as u32, height, ch0: ch0 as u32, width: width as u32 });
    }
    chunks
}

/// A voxel column materialized in the padded chunk format: for each
/// chunk, a dense `height x width` block with A values at run positions
/// and zeros elsewhere.
#[derive(Debug, Clone)]
pub struct PaddedColumn {
    /// The chunk rectangles.
    pub chunks: Vec<Chunk>,
    /// Offset of each chunk's dense block in `values`
    /// (length `chunks.len() + 1`).
    pub chunk_offset: Vec<u32>,
    /// Dense zero-padded A values, chunk-major then row-major.
    pub values: Vec<f32>,
}

impl PaddedColumn {
    /// Build the padded representation of `col` with the given chunk
    /// width.
    pub fn build(col: &ColumnView<'_>, width: usize) -> PaddedColumn {
        let chunks = chunk_column(col, width);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        let mut values = vec![0.0f32; total];
        let mut chunk_offset = Vec::with_capacity(chunks.len() + 1);
        let mut off = 0usize;
        chunk_offset.push(0u32);
        for c in &chunks {
            for r in 0..c.height as usize {
                let view = c.view0 as usize + r;
                let (fc, n) = col.run(view);
                debug_assert!(n > 0);
                let seg_vals = segment_values(col, view);
                let row = &mut values[off + r * c.width as usize..off + (r + 1) * c.width as usize];
                let rel = fc - c.ch0 as usize;
                row[rel..rel + n].copy_from_slice(seg_vals);
            }
            off += c.len();
            chunk_offset.push(off as u32);
        }
        PaddedColumn { chunks, chunk_offset, values }
    }

    /// Dense elements stored (reads the GPU must perform).
    pub fn dense_len(&self) -> usize {
        self.values.len()
    }

    /// Inflation factor over the sparse storage: dense / nnz. The
    /// paper's Fig. 6 trade-off — larger widths read and compute more.
    pub fn padding_ratio(&self, col: &ColumnView<'_>) -> f32 {
        self.dense_len() as f32 / col.nnz() as f32
    }

    /// Iterate `(view, absolute_channel, a_value)` over all dense
    /// elements, including zero padding — exactly what the transformed
    /// GPU kernel reads.
    pub fn dense_iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.chunks.iter().zip(self.chunk_offset.windows(2)).flat_map(move |(c, off)| {
            let base = off[0] as usize;
            (0..c.height as usize).flat_map(move |r| {
                let view = c.view0 as usize + r;
                (0..c.width as usize).map(move |k| {
                    (view, c.ch0 as usize + k, self.values[base + r * c.width as usize + k])
                })
            })
        })
    }
}

/// The values slice of one view's run (helper over `ColumnView`).
fn segment_values<'a>(col: &ColumnView<'a>, view: usize) -> &'a [f32] {
    // ColumnView exposes runs via segments(); index to the right one.
    // Runs are contiguous in flat storage, so compute the offset.
    let mut off = 0usize;
    for v in 0..view {
        off += col.run(v).1;
    }
    let n = col.run(view).1;
    &col.values_flat()[off..off + n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::geometry::Geometry;
    use ct_core::sysmat::SystemMatrix;

    fn col_setup() -> (Geometry, SystemMatrix) {
        let g = Geometry::tiny_scale();
        let a = SystemMatrix::compute(&g);
        (g, a)
    }

    #[test]
    fn chunks_cover_every_nonempty_view_once() {
        let (g, a) = col_setup();
        for j in [0usize, 100, 300, g.grid.num_voxels() - 1] {
            let col = a.column(j);
            let chunks = chunk_column(&col, 8);
            let mut covered = vec![0usize; g.num_views];
            for c in &chunks {
                for r in 0..c.height as usize {
                    covered[c.view0 as usize + r] += 1;
                }
            }
            for (v, &cov) in covered.iter().enumerate() {
                let expect = usize::from(col.run(v).1 > 0);
                assert_eq!(cov, expect, "voxel {j} view {v}");
            }
        }
    }

    #[test]
    fn runs_fit_inside_their_chunk() {
        let (_, a) = col_setup();
        let col = a.column(150);
        for width in [4usize, 8, 16, 32] {
            for c in chunk_column(&col, width) {
                for r in 0..c.height as usize {
                    let (fc, n) = col.run(c.view0 as usize + r);
                    assert!(fc >= c.ch0 as usize);
                    assert!(fc + n <= (c.ch0 + c.width) as usize);
                }
            }
        }
    }

    #[test]
    fn wider_chunks_mean_fewer_chunks() {
        let (_, a) = col_setup();
        let col = a.column(200);
        let n4 = chunk_column(&col, 4).len();
        let n16 = chunk_column(&col, 16).len();
        let n32 = chunk_column(&col, 32).len();
        assert!(n4 >= n16, "{n4} < {n16}");
        assert!(n16 >= n32, "{n16} < {n32}");
        assert!(n32 >= 1);
    }

    #[test]
    fn padded_values_match_sparse() {
        let (_, a) = col_setup();
        let col = a.column(250);
        let padded = PaddedColumn::build(&col, 8);
        // Sum of dense values equals sum of sparse values (padding is 0).
        let dense_sum: f32 = padded.values.iter().sum();
        let sparse_sum: f32 = col.values_flat().iter().sum();
        assert!((dense_sum - sparse_sum).abs() < 1e-4);
        // Nonzero count matches nnz.
        let nz = padded.values.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nz, col.values_flat().iter().filter(|&&v| v != 0.0).count());
    }

    #[test]
    fn dense_iter_positions_are_correct() {
        let (g, a) = col_setup();
        let col = a.column(77);
        let padded = PaddedColumn::build(&col, 8);
        // Rebuild a (view, channel) -> value map from the sparse column.
        let mut sparse = std::collections::HashMap::new();
        for seg in col.segments() {
            for (k, &v) in seg.values.iter().enumerate() {
                sparse.insert((seg.view, seg.first_channel + k), v);
            }
        }
        for (view, ch, v) in padded.dense_iter() {
            assert!(view < g.num_views);
            match sparse.get(&(view, ch)) {
                Some(&sv) => assert_eq!(v, sv),
                None => assert_eq!(v, 0.0, "padding at ({view},{ch}) must be zero"),
            }
        }
    }

    #[test]
    fn padding_ratio_grows_with_width() {
        let (_, a) = col_setup();
        let col = a.column(300);
        let r8 = PaddedColumn::build(&col, 8).padding_ratio(&col);
        let r32 = PaddedColumn::build(&col, 32).padding_ratio(&col);
        assert!(r8 >= 1.0);
        assert!(r32 > r8);
    }
}

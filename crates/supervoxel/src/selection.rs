//! Per-iteration SuperVoxel working-set selection.
//!
//! Both parallel algorithms update only a fraction of SVs per outer
//! iteration (non-homogeneous ICD): iteration 1 updates all SVs; even
//! iterations take the top fraction by the previous update amount;
//! odd iterations take a random fraction. PSV-ICD uses 20%, GPU-ICD
//! raises it to 25% to keep the four checkerboard groups populated.

use rand::seq::SliceRandom;
use rand::Rng;

/// Which policy produced a working set (useful for logging/tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Iteration 1: everything.
    All,
    /// Even iterations: largest recent update amounts.
    Top,
    /// Odd iterations: uniform random subset.
    Random,
}

/// Select the SVs to update in iteration `iter` (1-based, matching
/// Algorithms 2 and 3). `update_amount[sv]` is the sum of `|delta|`
/// from each SV's most recent visit.
pub fn select_svs<R: Rng>(
    iter: u64,
    fraction: f32,
    update_amount: &[f64],
    rng: &mut R,
) -> (Selection, Vec<usize>) {
    let n = update_amount.len();
    if iter <= 1 {
        return (Selection::All, (0..n).collect());
    }
    let count = ((n as f32 * fraction).ceil() as usize).clamp(1, n);
    if iter.is_multiple_of(2) {
        // Top `count` by update amount.
        let mut ids: Vec<usize> = (0..n).collect();
        ids.sort_by(|&a, &b| {
            update_amount[b].partial_cmp(&update_amount[a]).unwrap_or(std::cmp::Ordering::Equal)
        });
        ids.truncate(count);
        (Selection::Top, ids)
    } else {
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(rng);
        ids.truncate(count);
        ids.sort_unstable();
        (Selection::Random, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn first_iteration_selects_all() {
        let mut rng = StdRng::seed_from_u64(0);
        let amounts = vec![0.0; 10];
        let (sel, ids) = select_svs(1, 0.25, &amounts, &mut rng);
        assert_eq!(sel, Selection::All);
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn even_iterations_take_top() {
        let mut rng = StdRng::seed_from_u64(0);
        let amounts: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let (sel, ids) = select_svs(2, 0.25, &amounts, &mut rng);
        assert_eq!(sel, Selection::Top);
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&7) && ids.contains(&6));
    }

    #[test]
    fn odd_iterations_take_random_subset() {
        let mut rng = StdRng::seed_from_u64(1);
        let amounts = vec![1.0; 20];
        let (sel, ids) = select_svs(3, 0.25, &amounts, &mut rng);
        assert_eq!(sel, Selection::Random);
        assert_eq!(ids.len(), 5);
        let mut unique = ids.clone();
        unique.dedup();
        assert_eq!(unique.len(), 5);
        assert!(ids.iter().all(|&i| i < 20));
    }

    #[test]
    fn fraction_rounds_up_and_clamps() {
        let mut rng = StdRng::seed_from_u64(2);
        let amounts = vec![1.0; 3];
        let (_, ids) = select_svs(2, 0.25, &amounts, &mut rng);
        assert_eq!(ids.len(), 1); // ceil(0.75) = 1
        let (_, all) = select_svs(2, 2.0, &amounts, &mut rng);
        assert_eq!(all.len(), 3); // clamped to n
    }

    #[test]
    fn random_selection_varies_by_iteration() {
        let amounts = vec![1.0; 40];
        let mut rng = StdRng::seed_from_u64(3);
        let (_, a) = select_svs(3, 0.25, &amounts, &mut rng);
        let (_, b) = select_svs(5, 0.25, &amounts, &mut rng);
        assert_ne!(a, b);
    }
}

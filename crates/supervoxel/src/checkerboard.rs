//! The 4-group checkerboard partition (paper Fig. 3).
//!
//! GPU-ICD updates many SVs concurrently *with* intra-SV parallelism,
//! so simultaneous updates of boundary voxels shared by neighbouring
//! SVs would corrupt the voxel/error-sinogram correspondence. SVs are
//! therefore partitioned by the parity of their SV-grid coordinates
//! into four groups; members of one group are never 8-adjacent and can
//! run concurrently.

use crate::tiling::Tiling;

/// Partition (a subset of) SVs into the four checkerboard groups.
/// Group index is `(sv_row % 2) * 2 + (sv_col % 2)`.
pub fn checkerboard_groups(tiling: &Tiling, ids: &[usize]) -> [Vec<usize>; 4] {
    let mut groups: [Vec<usize>; 4] = Default::default();
    for &id in ids {
        let sv = tiling.svs()[id];
        let g = (sv.sv_row % 2) * 2 + (sv.sv_col % 2);
        groups[g].push(id);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_core::geometry::ImageGrid;

    fn tiling() -> Tiling {
        Tiling::new(ImageGrid::square(64, 1.0), 9)
    }

    #[test]
    fn groups_partition_input() {
        let t = tiling();
        let all: Vec<usize> = (0..t.len()).collect();
        let groups = checkerboard_groups(&t, &all);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, t.len());
        let mut seen = vec![false; t.len()];
        for g in &groups {
            for &id in g {
                assert!(!seen[id], "SV {id} in two groups");
                seen[id] = true;
            }
        }
    }

    #[test]
    fn no_adjacent_pair_within_group() {
        let t = tiling();
        let all: Vec<usize> = (0..t.len()).collect();
        for group in &checkerboard_groups(&t, &all) {
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    assert!(!t.adjacent(a, b), "SVs {a} and {b} adjacent within a group");
                }
            }
        }
    }

    #[test]
    fn no_shared_voxels_within_group() {
        // Stronger than grid adjacency: actual voxel sets are disjoint.
        let t = tiling();
        let all: Vec<usize> = (0..t.len()).collect();
        for group in &checkerboard_groups(&t, &all) {
            let mut owner = vec![usize::MAX; 64 * 64];
            for &id in group {
                for j in t.voxels(id) {
                    assert_eq!(owner[j], usize::MAX, "voxel {j} shared inside a group");
                    owner[j] = id;
                }
            }
        }
    }

    #[test]
    fn respects_subset() {
        let t = tiling();
        let subset = [0usize, 3, 5, 11];
        let groups = checkerboard_groups(&t, &subset);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, subset.len());
    }
}

//! Partitioning the image into SuperVoxels.
//!
//! SuperVoxels are square tiles of side `sv_side`. Following both
//! papers, adjacent SVs *share boundary voxels* (each tile extends one
//! voxel into its right/bottom neighbours) which speeds convergence:
//! boundary voxels get refreshed by whichever neighbouring SV runs
//! last.

use ct_core::geometry::ImageGrid;

/// One SuperVoxel: a rectangular tile of voxels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperVoxel {
    /// Index within the tiling's SV list.
    pub id: usize,
    /// Position in the SV grid (row of tiles, column of tiles).
    pub sv_row: usize,
    /// See `sv_row`.
    pub sv_col: usize,
    /// First image row covered.
    pub row0: usize,
    /// First image column covered.
    pub col0: usize,
    /// Rows covered (tile side, +1 shared boundary, clipped at edges).
    pub rows: usize,
    /// Columns covered.
    pub cols: usize,
}

impl SuperVoxel {
    /// Number of voxels in this SV.
    pub fn num_voxels(&self) -> usize {
        self.rows * self.cols
    }
}

/// A complete SV tiling of an image grid.
#[derive(Debug, Clone)]
pub struct Tiling {
    grid: ImageGrid,
    sv_side: usize,
    sv_rows: usize,
    sv_cols: usize,
    svs: Vec<SuperVoxel>,
}

impl Tiling {
    /// Tile `grid` with SVs of side `sv_side`, sharing one boundary
    /// row/column between adjacent tiles.
    pub fn new(grid: ImageGrid, sv_side: usize) -> Self {
        assert!(sv_side >= 2, "sv_side must be at least 2");
        let sv_rows = grid.ny.div_ceil(sv_side);
        let sv_cols = grid.nx.div_ceil(sv_side);
        let mut svs = Vec::with_capacity(sv_rows * sv_cols);
        for sr in 0..sv_rows {
            for sc in 0..sv_cols {
                let row0 = sr * sv_side;
                let col0 = sc * sv_side;
                // +1 shared boundary voxel toward the next tile.
                let rows = (sv_side + 1).min(grid.ny - row0);
                let cols = (sv_side + 1).min(grid.nx - col0);
                svs.push(SuperVoxel {
                    id: svs.len(),
                    sv_row: sr,
                    sv_col: sc,
                    row0,
                    col0,
                    rows,
                    cols,
                });
            }
        }
        Tiling { grid, sv_side, sv_rows, sv_cols, svs }
    }

    /// The tiled grid.
    pub fn grid(&self) -> ImageGrid {
        self.grid
    }

    /// The tile side used.
    pub fn sv_side(&self) -> usize {
        self.sv_side
    }

    /// SV grid shape `(rows of tiles, cols of tiles)`.
    pub fn sv_grid(&self) -> (usize, usize) {
        (self.sv_rows, self.sv_cols)
    }

    /// All SVs, in row-major SV-grid order.
    pub fn svs(&self) -> &[SuperVoxel] {
        &self.svs
    }

    /// Number of SVs.
    pub fn len(&self) -> usize {
        self.svs.len()
    }

    /// Whether the tiling is empty (never, for valid grids).
    pub fn is_empty(&self) -> bool {
        self.svs.is_empty()
    }

    /// Linear voxel indices covered by SV `id`, row-major.
    pub fn voxels(&self, id: usize) -> impl Iterator<Item = usize> + '_ {
        let sv = self.svs[id];
        let nx = self.grid.nx;
        (0..sv.rows).flat_map(move |r| {
            let base = (sv.row0 + r) * nx + sv.col0;
            base..base + sv.cols
        })
    }

    /// The SV that *owns* a voxel (ignoring boundary sharing): the tile
    /// whose non-shared region contains it.
    pub fn owner_of(&self, voxel: usize) -> usize {
        let row = voxel / self.grid.nx;
        let col = voxel % self.grid.nx;
        let sr = (row / self.sv_side).min(self.sv_rows - 1);
        let sc = (col / self.sv_side).min(self.sv_cols - 1);
        sr * self.sv_cols + sc
    }

    /// Whether two SVs touch (share voxels or are 8-adjacent in the SV
    /// grid) — such SVs must not be updated concurrently.
    pub fn adjacent(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let sa = self.svs[a];
        let sb = self.svs[b];
        sa.sv_row.abs_diff(sb.sv_row) <= 1 && sa.sv_col.abs_diff(sb.sv_col) <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> ImageGrid {
        ImageGrid::square(64, 1.0)
    }

    #[test]
    fn covers_all_voxels() {
        let t = Tiling::new(grid(), 13);
        let mut seen = vec![false; 64 * 64];
        for id in 0..t.len() {
            for j in t.voxels(id) {
                seen[j] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sv_grid_shape() {
        let t = Tiling::new(grid(), 16);
        assert_eq!(t.sv_grid(), (4, 4));
        assert_eq!(t.len(), 16);
        // Paper example: 512x512 with side 30 gives 18x18 = 324 tiles
        // ("~289 SVs" for side 30 in the paper's rounding).
        let t2 = Tiling::new(ImageGrid::square(512, 1.0), 30);
        assert_eq!(t2.len(), 18 * 18);
    }

    #[test]
    fn boundary_voxels_are_shared() {
        let t = Tiling::new(grid(), 16);
        // Voxel at the seam column 16 belongs to tile col 1's region and
        // is also covered by tile col 0 (its +1 boundary).
        let seam = 5 * 64 + 16;
        let covering: Vec<usize> =
            (0..t.len()).filter(|&id| t.voxels(id).any(|j| j == seam)).collect();
        assert_eq!(covering.len(), 2);
        assert_eq!(t.owner_of(seam), covering[1]);
    }

    #[test]
    fn interior_voxels_unshared() {
        let t = Tiling::new(grid(), 16);
        let interior = 5 * 64 + 5;
        let covering = (0..t.len()).filter(|&id| t.voxels(id).any(|j| j == interior)).count();
        assert_eq!(covering, 1);
    }

    #[test]
    fn owner_is_consistent() {
        let t = Tiling::new(grid(), 13);
        for j in (0..64 * 64).step_by(101) {
            let o = t.owner_of(j);
            assert!(t.voxels(o).any(|v| v == j), "owner {o} does not cover voxel {j}");
        }
    }

    #[test]
    fn adjacency() {
        let t = Tiling::new(grid(), 16);
        // (0,0) touches (0,1), (1,0), (1,1) but not (0,2) or (2,2).
        assert!(t.adjacent(0, 1));
        assert!(t.adjacent(0, 4));
        assert!(t.adjacent(0, 5));
        assert!(!t.adjacent(0, 2));
        assert!(!t.adjacent(0, 10));
        assert!(!t.adjacent(3, 3));
    }

    #[test]
    fn ragged_edges_clip() {
        let t = Tiling::new(grid(), 30); // 64 = 30 + 30 + 4
        assert_eq!(t.sv_grid(), (3, 3));
        let last = t.svs()[8];
        assert_eq!(last.row0, 60);
        assert_eq!(last.rows, 4);
    }
}

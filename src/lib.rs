//! Umbrella crate for the PPoPP 2017 GPU-ICD MBIR reproduction.
//!
//! Re-exports the public APIs of the member crates so the examples and
//! integration tests can use a single import root. See the individual
//! crates for the substance:
//!
//! - [`ct_core`]: CT substrate (geometry, system matrix, sinograms,
//!   phantoms, forward projection, FBP).
//! - [`mbir`]: the MBIR core (priors, the single-voxel ICD update of the
//!   paper's Algorithm 1, the sequential ICD baseline).
//! - [`supervoxel`]: SuperVoxels, SuperVoxel buffers, layout transforms,
//!   A-matrix quantization, checkerboard grouping.
//! - [`psv_icd`]: the multi-core CPU baseline (paper's Algorithm 2,
//!   PPoPP 2016) with a 16-core timing model.
//! - [`gpu_sim`]: the simulated Maxwell-class GPU (occupancy, coalescing,
//!   caches, timing).
//! - [`gpu_icd`]: the paper's contribution — GPU-ICD (Algorithm 3).
//! - [`icd_opt`]: the generalized weighted-least-squares ICD solver of
//!   the paper's Section 6.
//! - [`mbir_telemetry`]: per-kernel profiling spans, iteration
//!   telemetry, JSON reports, and Chrome trace export.

#![warn(missing_docs)]

pub mod recon;

pub use ct_core;
pub use gpu_icd;
pub use gpu_sim;
pub use icd_opt;
pub use mbir;
pub use mbir_telemetry;
pub use psv_icd;
pub use supervoxel;

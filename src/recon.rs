//! High-level reconstruction facade: one builder call from sinogram to
//! image, wiring the right defaults for each algorithm — the API a
//! downstream user starts from before reaching for the per-crate
//! controls.
//!
//! ```no_run
//! use mbir_gpu_repro::recon::Reconstructor;
//! use mbir_gpu_repro::ct_core::{Geometry, Sinogram};
//!
//! let geom = Geometry::test_scale();
//! # let y = Sinogram::zeros(&geom);
//! let result = Reconstructor::new(geom)
//!     .algorithm(mbir_gpu_repro::recon::Algorithm::GpuIcd)
//!     .dose(2.0e4)
//!     .run(&y);
//! println!("done in {:.2} ms (modeled)", result.modeled_seconds * 1e3);
//! ```

use ct_core::fbp;
use ct_core::geometry::Geometry;
use ct_core::image::Image;
use ct_core::sinogram::Sinogram;
use ct_core::sysmat::SystemMatrix;
use gpu_icd::{GpuIcd, GpuOptions};
use mbir::prior::QggmrfPrior;
use mbir::sequential::{IcdConfig, SequentialIcd};
use mbir::stopping::StopRule;
use psv_icd::{PsvConfig, PsvIcd};

/// Which reconstruction algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Filtered back projection (fast, noisy).
    Fbp,
    /// Single-core ICD MBIR.
    SequentialIcd,
    /// 16-core PSV-ICD MBIR (modeled CPU).
    PsvIcd,
    /// GPU-ICD MBIR on the simulated Titan X.
    GpuIcd,
}

/// Outcome of a reconstruction.
#[derive(Debug, Clone)]
pub struct ReconResult {
    /// The reconstructed image.
    pub image: Image,
    /// Equits of ICD work (0 for FBP).
    pub equits: f64,
    /// Modeled execution seconds on the algorithm's platform
    /// (0 for FBP and sequential wall-clock-less paths).
    pub modeled_seconds: f64,
}

/// Builder for a reconstruction run.
#[derive(Debug, Clone)]
pub struct Reconstructor {
    geom: Geometry,
    algorithm: Algorithm,
    sigma: f32,
    dose: f32,
    stop: StopRule,
    max_passes: usize,
    gpu_options: Option<GpuOptions>,
    sv_side: Option<usize>,
}

impl Reconstructor {
    /// Defaults: GPU-ICD, qGGMRF sigma 0.002, dose 2e4, stop when the
    /// mean update falls below 0.3 HU.
    pub fn new(geom: Geometry) -> Self {
        Reconstructor {
            geom,
            algorithm: Algorithm::GpuIcd,
            sigma: 0.002,
            dose: 2.0e4,
            stop: StopRule::MeanUpdate { hu: 0.3 },
            max_passes: 200,
            gpu_options: None,
            sv_side: None,
        }
    }

    /// Pick the algorithm.
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// qGGMRF regularization scale.
    pub fn sigma(mut self, sigma: f32) -> Self {
        self.sigma = sigma;
        self
    }

    /// Photon count used to derive the statistical weights
    /// `w = I0 exp(-y)` from the measurement.
    pub fn dose(mut self, i0: f32) -> Self {
        self.dose = i0;
        self
    }

    /// Stopping rule (golden-free).
    pub fn stop(mut self, rule: StopRule) -> Self {
        self.stop = rule;
        self
    }

    /// Pass/iteration budget.
    pub fn max_passes(mut self, n: usize) -> Self {
        self.max_passes = n;
        self
    }

    /// Override the GPU options entirely (GPU-ICD only).
    pub fn gpu_options(mut self, o: GpuOptions) -> Self {
        self.gpu_options = Some(o);
        self
    }

    /// Override the SV side (PSV-ICD / GPU-ICD).
    pub fn sv_side(mut self, side: usize) -> Self {
        self.sv_side = Some(side);
        self
    }

    /// SV sides scaled to the grid (mirrors the paper's 13/33 at 512).
    fn default_sides(&self) -> (usize, usize) {
        let n = self.geom.grid.nx;
        ((n / 40).clamp(4, 13), (n / 16).clamp(6, 33))
    }

    /// Run on a measurement sinogram.
    pub fn run(&self, y: &Sinogram) -> ReconResult {
        if self.algorithm == Algorithm::Fbp {
            return ReconResult {
                image: fbp::reconstruct(&self.geom, y),
                equits: 0.0,
                modeled_seconds: 0.0,
            };
        }

        let a = SystemMatrix::compute(&self.geom);
        let mut w = Sinogram::zeros(&self.geom);
        for (wi, &yi) in w.data_mut().iter_mut().zip(y.data()) {
            *wi = self.dose * (-yi.max(0.0)).exp();
        }
        let prior = QggmrfPrior::standard(self.sigma);
        let init = fbp::reconstruct(&self.geom, y);
        let (cpu_side, gpu_side) = self.default_sides();

        match self.algorithm {
            Algorithm::Fbp => unreachable!(),
            Algorithm::SequentialIcd => {
                let mut icd = SequentialIcd::new(&a, y, &w, &prior, init, IcdConfig::default());
                icd.run_until(self.stop, self.max_passes);
                let equits = icd.equits();
                ReconResult { image: icd.into_image(), equits, modeled_seconds: 0.0 }
            }
            Algorithm::PsvIcd => {
                let side = self.sv_side.unwrap_or(cpu_side);
                let mut psv = PsvIcd::new(
                    &a,
                    y,
                    &w,
                    &prior,
                    init,
                    PsvConfig { sv_side: side, threads: 2, ..Default::default() },
                );
                // PSV drives off its own iteration loop with the same
                // golden-free rule applied to per-iteration updates.
                let mut state = mbir::stopping::StopState::new(self.stop);
                for _ in 0..self.max_passes {
                    let r = psv.iteration();
                    let pass = mbir::sequential::IcdStats {
                        updates: r.updates,
                        skipped: r.skipped,
                        total_abs_delta: r.abs_delta,
                    };
                    let stats = psv.stats();
                    state.observe(&pass, &stats, 0.0, self.geom.grid.num_voxels());
                    if let StopRule::MaxEquits { equits } = self.stop {
                        if psv.equits() >= equits {
                            break;
                        }
                    }
                    if state.should_stop() {
                        break;
                    }
                }
                ReconResult {
                    image: psv.image(),
                    equits: psv.equits(),
                    modeled_seconds: psv.modeled_seconds(),
                }
            }
            Algorithm::GpuIcd => {
                let opts = self.gpu_options.unwrap_or(GpuOptions {
                    sv_side: self.sv_side.unwrap_or(gpu_side),
                    threadblocks_per_sv: 12,
                    svs_per_batch: 16,
                    // The batch threshold only pays off with hundreds
                    // of SVs (paper scale); on small grids it starves
                    // whole iterations, so the facade disables it.
                    batch_threshold: false,
                    ..Default::default()
                });
                let mut gpu = GpuIcd::new(&a, y, &w, &prior, init, opts);
                gpu.run_until(self.stop, self.max_passes);
                ReconResult {
                    image: gpu.image().clone(),
                    equits: gpu.equits(),
                    modeled_seconds: gpu.modeled_seconds(),
                }
            }
        }
    }
}
